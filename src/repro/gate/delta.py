"""Delta diffing and thresholds: turn two trees into a GateReport.

The unit developers act on is the *risk delta with its driving feature
changes per file* (Le et al.'s assessment survey; the paper's §5.3
change-evaluation workflow), so this module works at two grains:

- **tree level** — both versions' feature rows, scored either by a
  trained model (``overall_risk``, with per-hypothesis probability
  deltas) or by the deterministic model-less
  :func:`feature_risk_score` proxy;
- **file level** — both versions' per-file analyzer records (the same
  records the engine's incremental cache stores), flattened to scalar
  features, diffed path by path, and ranked by a security-salience
  weighting so ``strcpy`` showing up outranks a comment reflow.

Extraction goes through
:meth:`~repro.engine.ExtractionEngine.extract_with_records`, so a gate
run shares the engine's cache: the warm re-run after a one-file edit
recomputes one file, and base/head trees that share files (the common
case — a PR touches a handful) share their per-file records too.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.core.evaluator import NEUTRAL_BAND
from repro.core.model import SecurityModel
from repro.engine import EngineConfig, ExtractionEngine
from repro.gate.report import FeatureMove, FileDelta, GateReport
from repro.gate.trees import resolve_tree
from repro.lang.sourcefile import Codebase
from repro.serve.modelstore import load_model

#: Default risk-delta threshold for gating surfaces: the evaluator's
#: neutral band, so "breach" and "verdict: regressed" agree by default.
DEFAULT_THRESHOLD = NEUTRAL_BAND

#: File deltas kept per report; the rest are counted, never silent.
MAX_FILE_DELTAS = 20

#: Driving feature moves kept per file / per tree.
MAX_FILE_DRIVERS = 5
MAX_TREE_MOVES = 8


class GateError(ValueError):
    """A gate request that cannot be assessed (bad tree, bad spec)."""


# -- per-file record flattening ----------------------------------------
#
# A per-file record (repro.core.features.file_record) is a nested dict
# of integer aggregates. The flattener lifts an explicit whitelist of
# scalars into flat ``group.name`` features; list-valued entries (raw
# per-function distributions) and the identifier bag are deliberately
# skipped — they have no meaningful scalar delta.

_RECORD_SCALARS = (
    ("loc", ("code", "comment", "blank", "preproc")),
    ("cyclomatic", ("total",)),
    ("halstead", ("distinct_operators", "distinct_operands",
                  "total_operators", "total_operands")),
    ("functions", ("n_functions", "n_public", "total_params",
                   "max_params", "total_length", "max_length",
                   "total_nesting", "max_nesting", "n_declarations",
                   "n_variables")),
    ("cfg", ("nodes", "edges", "branches", "returns")),
    ("dataflow", ("defs", "pairs", "max_reaching", "sources", "sinks",
                  "tainted")),
)

#: Severity floor for the ``bugs.high`` aggregate; import-free copy of
#: ``int(repro.bugfind.Severity.HIGH)`` to keep this module light.
_HIGH_SEVERITY = 3


def flatten_record(record: Dict[str, object]) -> Dict[str, float]:
    """One file's analyzer record as flat ``group.name`` scalars."""
    flat: Dict[str, float] = {}
    for group, names in _RECORD_SCALARS:
        section = record.get(group, {})
        for name in names:
            flat[f"{group}.{name}"] = float(section.get(name, 0))
    surface = record.get("surface", {})
    flat["surface.privilege"] = float(surface.get("privilege", 0))
    flat["surface.public_methods"] = float(
        surface.get("public_methods", 0))
    for channel, count in surface.get("channels", {}).items():
        if count:
            flat[f"surface.channel.{channel}"] = float(count)
    bugs = record.get("bugs", {})
    flat["bugs.total"] = float(bugs.get("total", 0))
    flat["bugs.high"] = float(sum(
        count for severity, count in bugs.get("severities", {}).items()
        if int(severity) >= _HIGH_SEVERITY))
    for rule, count in bugs.get("per_rule", {}).items():
        if count:
            flat[f"bugs.rule.{rule}"] = float(count)
    for kind, count in record.get("smells", {}).items():
        if count:
            flat[f"smell.{kind}"] = float(count)
    return flat


#: Security-salience weights for ranking feature movement: first match
#: wins (exact name before prefix). A moved dangerous-call finding
#: should outrank an equal-sized movement in plain line counts.
_SALIENCE: Tuple[Tuple[str, float], ...] = (
    ("bugs.high", 10.0),
    ("bugs.rule.", 8.0),
    ("bugs.total", 6.0),
    ("dataflow.tainted", 8.0),
    ("surface.channel.", 5.0),
    ("surface.privilege", 5.0),
    ("dataflow.sources", 3.0),
    ("dataflow.sinks", 3.0),
    ("smell.", 2.0),
    ("surface.public_methods", 2.0),
    ("cyclomatic.", 1.0),
    ("cfg.", 1.0),
    ("functions.", 1.0),
    ("dataflow.", 1.0),
    ("halstead.", 0.5),
    ("loc.", 0.5),
)


def _salience(name: str) -> float:
    for prefix, weight in _SALIENCE:
        if name == prefix or name.startswith(prefix):
            return weight
    return 1.0


def _ranked_moves(
    before: Dict[str, float], after: Dict[str, float], limit: int,
    weights: Optional[Dict[str, float]] = None,
) -> Tuple[List[FeatureMove], float]:
    """Weighted feature moves between two flat rows, largest first.

    Magnitude is weight × *relative* change (``|delta|`` over the
    larger endpoint, so it is bounded by the weight): raw feature
    scales span six orders of magnitude (Halstead effort per kLoC vs a
    bug count), and absolute deltas would let a big benign feature
    swamp a salient small one. ``weights`` overrides the static
    salience table (model mode uses the trained model's own weights at
    tree level). Returns the kept moves and the *total* weighted
    movement (the file's ranking score, computed before truncation so
    the cap cannot skew ranking).
    """
    moves: List[Tuple[float, FeatureMove]] = []
    total = 0.0
    for name in sorted(set(before) | set(after)):
        value_before = before.get(name, 0.0)
        value_after = after.get(name, 0.0)
        if value_before == value_after:
            continue
        if weights is not None:
            weight = abs(weights.get(name, 0.0))
            if weight == 0.0:
                weight = 1e-6  # unweighted features still rank, last
        else:
            weight = _salience(name)
        relative = (abs(value_after - value_before)
                    / max(abs(value_before), abs(value_after)))
        magnitude = weight * relative
        total += magnitude
        moves.append((magnitude, FeatureMove(
            name=name, before=value_before, after=value_after)))
    moves.sort(key=lambda pair: (-pair[0], pair[1].name))
    return [move for _, move in moves[:limit]], total


# -- model-less risk proxy ---------------------------------------------

#: The fixed, documented feature set behind :func:`feature_risk_score`.
#: Every term is a non-negative exposure; weights put one high-severity
#: finding per kLoC on the same order as a network-facing surface.
RISK_PROXY_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("bugs.high_per_kloc", 0.06),
    ("bugs.total_per_kloc", 0.02),
    ("flow.tainted_sink_calls", 0.08),
    ("surface.rasq_per_kloc", 0.01),
    ("surface.network_facing", 0.30),
    ("complexity.share_over_10", 0.50),
)


def feature_risk_score(row: Dict[str, float]) -> float:
    """Model-less risk proxy over a tree's feature row.

    ``1 - exp(-Σ wᵢ·max(0, xᵢ))`` over :data:`RISK_PROXY_WEIGHTS`:
    deterministic, bounded to ``[0, 1)``, and monotone in every
    security-salient input, so a features-only gate still orders
    versions sensibly — it just cannot claim calibrated probabilities.
    An empty row scores 0.0.
    """
    exposure = sum(
        weight * max(0.0, float(row.get(name, 0.0)))
        for name, weight in RISK_PROXY_WEIGHTS
    )
    return 1.0 - math.exp(-exposure)


# -- report assembly ---------------------------------------------------


def _file_deltas(
    base: Codebase,
    head: Codebase,
    records_base: List[Dict[str, object]],
    records_head: List[Dict[str, object]],
) -> Tuple[List[FileDelta], Dict[str, int], int]:
    """Per-file diff of the two versions' analyzer records."""
    flat_base = {source.path: flatten_record(record)
                 for source, record in zip(base.files, records_base)}
    flat_head = {source.path: flatten_record(record)
                 for source, record in zip(head.files, records_head)}
    deltas: List[FileDelta] = []
    unchanged = 0
    counts = {"files_base": len(base.files),
              "files_head": len(head.files)}
    for path in sorted(set(flat_base) | set(flat_head)):
        before = flat_base.get(path)
        after = flat_head.get(path)
        if before is None:
            status = "added"
            before = {}
        elif after is None:
            status = "removed"
            after = {}
        elif before == after:
            unchanged += 1
            continue
        else:
            status = "changed"
        drivers, score = _ranked_moves(before, after, MAX_FILE_DRIVERS)
        deltas.append(FileDelta(path=path, status=status, score=score,
                                drivers=tuple(drivers)))
    counts["changed"] = sum(1 for d in deltas if d.status == "changed")
    counts["added"] = sum(1 for d in deltas if d.status == "added")
    counts["removed"] = sum(1 for d in deltas if d.status == "removed")
    counts["unchanged"] = unchanged
    deltas.sort(key=lambda d: (-d.score, d.path))
    truncated = max(0, len(deltas) - MAX_FILE_DELTAS)
    return deltas[:MAX_FILE_DELTAS], counts, truncated


def build_gate_report(
    base: Codebase,
    head: Codebase,
    row_base: Dict[str, float],
    records_base: List[Dict[str, object]],
    row_head: Dict[str, float],
    records_head: List[Dict[str, object]],
    model: Optional[SecurityModel] = None,
    threshold: Optional[float] = None,
) -> GateReport:
    """Assemble a :class:`GateReport` from already-extracted artifacts.

    Pure assembly — no extraction, no I/O — so the watch loop (which
    keeps records in memory) and the gate surfaces (which extract
    through the engine) share one report builder.
    """
    probability_deltas: Dict[str, float] = {}
    tree_weights: Optional[Dict[str, float]] = None
    if model is not None:
        mode = "model"
        assess_base = model.assess(row_base)
        assess_head = model.assess(row_head)
        risk_before = assess_base.overall_risk
        risk_after = assess_head.overall_risk
        probability_deltas = {
            hyp: assess_head.probabilities[hyp]
            - assess_base.probabilities[hyp]
            for hyp in assess_base.probabilities
        }
        if probability_deltas:
            worst = max(probability_deltas,
                        key=lambda hyp: probability_deltas[hyp])
            tree_weights = dict(model.top_properties(
                worst, k=len(model.feature_names)))
    else:
        mode = "features"
        risk_before = feature_risk_score(row_base)
        risk_after = feature_risk_score(row_head)
    moved, _ = _ranked_moves(row_base, row_head, MAX_TREE_MOVES,
                             weights=tree_weights)
    files, counts, truncated = _file_deltas(
        base, head, records_base, records_head)
    report = GateReport(
        base_name=base.name,
        head_name=head.name,
        mode=mode,
        risk_before=float(risk_before),
        risk_after=float(risk_after),
        threshold=threshold,
        probability_deltas=probability_deltas,
        moved_features=tuple(moved),
        files=tuple(files),
        counts=counts,
        truncated_files=truncated,
    )
    obs.incr("gate.runs")
    if report.breach:
        obs.incr("gate.breaches")
    obs.event("gate.assessed", base=base.name, head=head.name,
              mode=mode, risk_delta=report.risk_delta,
              breach=report.breach,
              files_changed=counts.get("changed", 0))
    return report


def _resolve_model(
    model: Optional[Union[str, SecurityModel]]
) -> Optional[SecurityModel]:
    if model is None or isinstance(model, SecurityModel):
        return model
    return load_model(model)


def _extract_pair(
    base: Codebase, head: Codebase, engine: ExtractionEngine
) -> Tuple[Dict[str, float], List[Dict[str, object]],
           Dict[str, float], List[Dict[str, object]]]:
    """Row + records for both versions through one engine handle.

    An empty tree (the "gate a brand-new project" case) short-circuits
    to an empty row rather than erroring: risk scores treat missing
    features as zero, and every head file classifies as added.
    """
    def one(codebase: Codebase):
        if len(codebase) == 0:
            return {}, []
        return engine.extract_with_records(codebase)

    row_base, records_base = one(base)
    row_head, records_head = one(head)
    return row_base, records_base, row_head, records_head


def assess_delta(
    base: Union[str, Codebase],
    head: Union[str, Codebase],
    model: Optional[Union[str, SecurityModel]] = None,
    config: Optional[EngineConfig] = None,
    *,
    seed: int = 0,
) -> GateReport:
    """Assess the risk delta between two versions of a tree.

    ``base``/``head`` are directory paths, already-built
    :class:`~repro.lang.Codebase` objects, or ``synth:NAME@K``
    synthetic-history specs (see :func:`~repro.gate.trees.resolve_tree`;
    ``seed`` feeds the synthetic history). With ``model`` (a
    :class:`~repro.core.SecurityModel` or a saved-bundle path) risk is
    the model's ``overall_risk``; without, the deterministic
    :func:`feature_risk_score` proxy. No threshold is applied — the
    returned report's ``breach`` is always False; use
    :func:`gate_tree` to gate.
    """
    with obs.span("gate.assess_delta"):
        base_tree = resolve_tree(base, seed=seed, allow_empty=True)
        head_tree = resolve_tree(head, seed=seed, allow_empty=True)
        engine = (config or EngineConfig()).build()
        row_base, records_base, row_head, records_head = _extract_pair(
            base_tree, head_tree, engine)
        return build_gate_report(
            base_tree, head_tree, row_base, records_base,
            row_head, records_head,
            model=_resolve_model(model), threshold=None)


def gate_tree(
    base: Union[str, Codebase],
    head: Union[str, Codebase],
    model: Optional[Union[str, SecurityModel]] = None,
    threshold: float = DEFAULT_THRESHOLD,
    config: Optional[EngineConfig] = None,
    *,
    seed: int = 0,
) -> GateReport:
    """Gate a change: :func:`assess_delta` judged against ``threshold``.

    The returned report's ``breach`` is True exactly when the risk
    delta is *strictly* greater than ``threshold`` — a delta exactly at
    the threshold passes, and an improving (negative) delta can never
    breach. This is the library form of ``repro gate`` and the daemon's
    ``POST /gate``; callers decide what a breach does (the CLI exits
    ``EXIT_GATE_BREACH``, CI fails the job).
    """
    if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool) or not math.isfinite(threshold):
        raise GateError(f"threshold must be a finite number, "
                        f"got {threshold!r}")
    with obs.span("gate.gate_tree", threshold=threshold):
        base_tree = resolve_tree(base, seed=seed, allow_empty=True)
        head_tree = resolve_tree(head, seed=seed, allow_empty=True)
        engine = (config or EngineConfig()).build()
        row_base, records_base, row_head, records_head = _extract_pair(
            base_tree, head_tree, engine)
        return build_gate_report(
            base_tree, head_tree, row_base, records_base,
            row_head, records_head,
            model=_resolve_model(model), threshold=float(threshold))
