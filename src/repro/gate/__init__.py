"""Continuous assessment: risk gates and watch mode over the delta engine.

The paper's pitch is *clairvoyance for developers* — security assessment
cheap and continuous enough to run on every change. This package is that
workload as a product surface:

- :func:`~repro.gate.delta.assess_delta` / :func:`~repro.gate.delta.gate_tree`
  — compare two versions of a tree (directories, :class:`~repro.lang.Codebase`
  objects, or ``synth:NAME@K`` synthetic-history specs), report the risk
  delta with the top driving feature changes per file, and judge it
  against a threshold. The CLI's ``repro gate``, the daemon's
  ``POST /gate``, and the public :mod:`repro.api` entry points all call
  into here, so the three surfaces cannot drift apart.
- :class:`~repro.gate.watch.TreeWatcher` — the polling re-assessment loop
  behind ``repro watch PATH``: mtime/content-digest change detection with
  debounce coalescing, file-granular delta recompute (only changed files
  are re-analyzed), one ``obs.stream``-compatible JSON line per
  re-assessment.
- :mod:`repro.gate.report` — the :class:`~repro.gate.report.GateReport`
  value object, its canonical JSON payload (stamped with the serve
  layer's ``SCHEMA_VERSION``; offline bytes identical to the served
  bytes by construction), and the human-readable rendering.

Threshold semantics are strict-greater: a delta exactly at the threshold
passes, anything above it breaches (``repro gate`` exits
``EXIT_GATE_BREACH``). A negative (improving) delta can never breach.
"""

from repro.gate.delta import (
    DEFAULT_THRESHOLD,
    GateError,
    assess_delta,
    build_gate_report,
    feature_risk_score,
    gate_tree,
)
from repro.gate.report import (
    FeatureMove,
    FileDelta,
    GateReport,
    format_gate_report,
    gate_payload,
)
from repro.gate.trees import resolve_tree
from repro.gate.watch import TreeWatcher

__all__ = [
    "DEFAULT_THRESHOLD",
    "FeatureMove",
    "FileDelta",
    "GateError",
    "GateReport",
    "TreeWatcher",
    "assess_delta",
    "build_gate_report",
    "feature_risk_score",
    "format_gate_report",
    "gate_payload",
    "gate_tree",
    "resolve_tree",
]
