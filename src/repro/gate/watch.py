"""Watch mode: continuous re-assessment of a tree on disk.

``repro watch PATH`` is the paper's clairvoyance loop made literal: a
developer keeps it running in a terminal (or a CI sidecar tails its
stream) and every save re-scores the tree. The loop is built for the
delta engine's economics:

- **change detection** is content-digest based (the same
  :func:`~repro.engine.digest.file_digest` the cache keys on), so a
  ``touch`` that changes only the mtime re-assesses nothing;
- **debounce coalescing** — a burst of rapid saves (editors write
  multiple times, formatters rewrite whole trees) produces *one*
  re-assessment once the tree has been quiet for the debounce window,
  not one per write;
- **file-granular recompute** — only files whose digest moved are
  re-analyzed; every other record comes from the in-memory baseline,
  then :func:`~repro.core.features.merge_records` folds the tree row.

Each re-assessment emits one JSON-able event shaped exactly like an
``obs.stream`` ``event`` line (``{"v": 1, "ts": …, "type": "event",
"name": "watch.assess", "fields": {…}}``), so ``repro monitor`` and any
stream consumer can tail a watch session unchanged.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.core.features import file_record, merge_records
from repro.core.model import SecurityModel
from repro.engine.digest import file_digest
from repro.gate.delta import build_gate_report
from repro.gate.report import GateReport, top_feature_summary
from repro.lang.sourcefile import Codebase

#: Default quiet window before a dirty tree is re-assessed (seconds).
DEFAULT_DEBOUNCE = 0.5

#: Default poll interval for the run loop (seconds).
DEFAULT_INTERVAL = 1.0


class TreeWatcher:
    """Debounced, file-granular re-assessment of one directory tree.

    Drive it by calling :meth:`poll` on a cadence (the CLI's
    :meth:`run` loop does; tests call it directly with a fake clock).
    ``poll`` returns ``None`` while the tree is unchanged or still
    settling, and one :class:`~repro.gate.report.GateReport` — base =
    the previously assessed state, head = the tree now — per coalesced
    batch of changes.

    ``clock`` is injectable (monotonic seconds) so debounce behaviour
    is testable without sleeping.
    """

    def __init__(
        self,
        root: str,
        model: Optional[SecurityModel] = None,
        threshold: Optional[float] = None,
        debounce: float = DEFAULT_DEBOUNCE,
        clock: Callable[[], float] = time.monotonic,
    ):
        if debounce < 0:
            raise ValueError(f"debounce must be >= 0, got {debounce}")
        if not os.path.isdir(root):
            raise ValueError(f"watch root {root!r} is not a directory")
        self.root = root
        self.model = model
        self.threshold = threshold
        self.debounce = float(debounce)
        self._clock = clock
        self.seq = 0
        #: path -> (digest, per-file record) for the assessed baseline.
        self._records: Dict[str, Tuple[str, dict]] = {}
        self._codebase = Codebase("empty")
        self._row: Dict[str, float] = {}
        #: digests last observed on disk (may be ahead of the baseline).
        self._pending: Dict[str, str] = {}
        self._dirty = False
        self._quiet_since = self._clock()
        self._baseline()

    @property
    def codebase(self) -> Codebase:
        """The most recently assessed state of the tree."""
        return self._codebase

    # -- assessment ---------------------------------------------------

    def _scan(self) -> Tuple[Codebase, Dict[str, str]]:
        codebase = Codebase.from_directory(self.root)
        digests = {source.path: file_digest(source)
                   for source in codebase.files}
        return codebase, digests

    def _assess(self, codebase: Codebase,
                digests: Dict[str, str]) -> GateReport:
        """Re-score ``codebase``, recomputing only changed files."""
        recomputed = 0
        records: Dict[str, Tuple[str, dict]] = {}
        for source in codebase.files:
            digest = digests[source.path]
            kept = self._records.get(source.path)
            if kept is not None and kept[0] == digest:
                records[source.path] = kept
            else:
                records[source.path] = (digest, file_record(source))
                recomputed += 1
        ordered = [records[source.path][1]
                   for source in codebase.files]
        row = {key: float(value) for key, value in
               merge_records(codebase, ordered).items()}
        report = build_gate_report(
            self._codebase, codebase,
            self._row,
            [self._records[s.path][1] for s in self._codebase.files],
            row, ordered,
            model=self.model, threshold=self.threshold)
        obs.incr("watch.reassessments")
        obs.incr("watch.files_recomputed", recomputed)
        self._codebase = codebase
        self._records = records
        self._row = row
        self.seq += 1
        return report

    def _baseline(self) -> None:
        """Assess the initial state without emitting a delta."""
        codebase, digests = self._scan()
        records: Dict[str, Tuple[str, dict]] = {
            source.path: (digests[source.path], file_record(source))
            for source in codebase.files}
        ordered = [records[source.path][1]
                   for source in codebase.files]
        self._codebase = codebase
        self._records = records
        self._row = {key: float(value) for key, value in
                     merge_records(codebase, ordered).items()} \
            if codebase.files else {}
        self._pending = digests

    # -- polling ------------------------------------------------------

    def poll(self) -> Optional[GateReport]:
        """One poll tick: detect changes, re-assess once settled.

        Returns a report only when a coalesced batch of changes has
        been quiet for the debounce window; otherwise ``None``.
        """
        now = self._clock()
        codebase, digests = self._scan()
        if digests != self._pending:
            # Still being written to: restart the quiet window.
            self._pending = digests
            self._dirty = True
            self._quiet_since = now
            return None
        if not self._dirty:
            return None
        if now - self._quiet_since < self.debounce:
            return None
        self._dirty = False
        return self._assess(codebase, digests)

    def run(
        self,
        emit: Callable[[Dict[str, object]], None],
        interval: float = DEFAULT_INTERVAL,
        count: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> int:
        """Poll forever (or for ``count`` re-assessments), emitting events.

        ``emit`` receives one :func:`watch_event` dict per
        re-assessment. Returns the number of re-assessments performed
        (useful when ``count`` bounds a test or smoke run).
        """
        emitted = 0
        while count is None or emitted < count:
            report = self.poll()
            if report is not None:
                event = watch_event(self, report)
                emit(event)
                obs.event("watch.assess", **event["fields"])
                emitted += 1
                if count is not None and emitted >= count:
                    break
            sleep(interval)
        return emitted


def watch_event(watcher: TreeWatcher,
                report: GateReport) -> Dict[str, object]:
    """One re-assessment as an ``obs.stream``-compatible event line."""
    counts = report.counts
    return {
        "v": 1,
        "ts": round(time.time(), 6),
        "type": "event",
        "name": "watch.assess",
        "fields": {
            "seq": watcher.seq,
            "root": watcher.root,
            "files": counts.get("files_head", 0),
            "changed": counts.get("changed", 0),
            "added": counts.get("added", 0),
            "removed": counts.get("removed", 0),
            "risk": report.risk_after,
            "risk_delta": report.risk_delta,
            "verdict": report.verdict.value,
            "breach": report.breach,
            "top": top_feature_summary(report),
        },
    }


def iter_watch(
    watcher: TreeWatcher,
    interval: float = DEFAULT_INTERVAL,
    count: Optional[int] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> "List[Dict[str, object]]":
    """Collect ``count`` watch events (testing/scripting convenience)."""
    events: List[Dict[str, object]] = []
    watcher.run(events.append, interval=interval, count=count,
                sleep=sleep)
    return events
