"""The gate report: value objects, canonical payload, text rendering.

A :class:`GateReport` is the single artifact every continuous-assessment
surface hands back — ``repro gate``, ``repro watch``, ``POST /gate``,
and :func:`repro.api.assess_delta` all produce one. The JSON form goes
through :func:`gate_payload` + :func:`~repro.serve.payloads.dump_payload`
so the offline CLI's ``--json`` bytes and the daemon's response body are
identical by construction (the payload deliberately carries no
model-*identity* field — the CLI knows a path, the daemon a store name,
and either would break the byte contract without informing the verdict).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.evaluator import NEUTRAL_BAND, Verdict
from repro.serve.payloads import SCHEMA_VERSION


@dataclass(frozen=True)
class FeatureMove:
    """One feature's movement between the base and head versions."""

    name: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    def as_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
        }


@dataclass(frozen=True)
class FileDelta:
    """One file's contribution to the change, with its driving features.

    ``status`` is ``"added"``, ``"removed"``, or ``"changed"``;
    unchanged files never appear (their records are byte-identical, so
    they cannot drive anything). ``score`` is the security-salience-
    weighted magnitude of the file's feature movement — the ranking key,
    not a probability. ``drivers`` is the top handful of per-file
    feature moves, largest weighted movement first.
    """

    path: str
    status: str
    score: float
    drivers: Tuple[FeatureMove, ...]

    def as_payload(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "status": self.status,
            "score": self.score,
            "drivers": [move.as_payload() for move in self.drivers],
        }


@dataclass(frozen=True)
class GateReport:
    """The risk delta between two versions of a tree, fully attributed.

    ``mode`` records how risk was scored: ``"model"`` (a trained
    :class:`~repro.core.SecurityModel`'s ``overall_risk``) or
    ``"features"`` (the model-less
    :func:`~repro.gate.delta.feature_risk_score` proxy).
    ``threshold`` is None for a pure assessment
    (:func:`~repro.api.assess_delta`); a gating surface sets it and
    reads :attr:`breach`.
    """

    base_name: str
    head_name: str
    mode: str
    risk_before: float
    risk_after: float
    threshold: Optional[float]
    #: hypothesis id -> probability delta (model mode; empty otherwise).
    probability_deltas: Dict[str, float]
    #: tree-level feature moves that drove the delta, largest first.
    moved_features: Tuple[FeatureMove, ...]
    #: per-file attribution, highest-scoring file first.
    files: Tuple[FileDelta, ...]
    #: files_base / files_head / changed / added / removed / unchanged.
    counts: Dict[str, int]
    #: file deltas dropped beyond the per-report cap (never silent).
    truncated_files: int = 0

    @property
    def risk_delta(self) -> float:
        return self.risk_after - self.risk_before

    @property
    def breach(self) -> bool:
        """Strictly above the threshold; exactly at it passes."""
        if self.threshold is None:
            return False
        return self.risk_delta > self.threshold

    @property
    def verdict(self) -> Verdict:
        if self.risk_delta > NEUTRAL_BAND:
            return Verdict.REGRESSED
        if self.risk_delta < -NEUTRAL_BAND:
            return Verdict.IMPROVED
        return Verdict.NEUTRAL


def gate_payload(report: GateReport) -> Dict[str, object]:
    """The canonical JSON document for one gate run.

    This is the document ``repro gate --json`` writes and ``POST /gate``
    returns; both serialise it with
    :func:`~repro.serve.payloads.dump_payload`, so the bytes cannot
    drift apart.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "base": {"app": report.base_name,
                 "files": report.counts.get("files_base", 0)},
        "head": {"app": report.head_name,
                 "files": report.counts.get("files_head", 0)},
        "mode": report.mode,
        "risk": {
            "before": report.risk_before,
            "after": report.risk_after,
            "delta": report.risk_delta,
        },
        "threshold": report.threshold,
        "breach": report.breach,
        "verdict": report.verdict.value,
        "probability_deltas": {
            key: report.probability_deltas[key]
            for key in sorted(report.probability_deltas)
        },
        "moved_features": [move.as_payload()
                           for move in report.moved_features],
        "files": [delta.as_payload() for delta in report.files],
        "counts": {key: report.counts[key]
                   for key in sorted(report.counts)},
        "truncated_files": report.truncated_files,
    }


def format_gate_report(report: GateReport) -> str:
    """Human-readable rendering (what ``repro gate`` prints sans --json)."""
    title = f"Risk gate: {report.base_name} -> {report.head_name}"
    arrow = {
        Verdict.IMPROVED: "risk DOWN",
        Verdict.REGRESSED: "risk UP",
        Verdict.NEUTRAL: "risk unchanged",
    }[report.verdict]
    sign = "+" if report.risk_delta >= 0 else ""
    lines = [
        title,
        "=" * len(title),
        f"verdict: {arrow} ({report.risk_before:.3f} -> "
        f"{report.risk_after:.3f}, delta {sign}{report.risk_delta:.3f})",
        f"mode: {report.mode}",
    ]
    if report.threshold is not None:
        outcome = "BREACH" if report.breach else "pass"
        lines.append(
            f"threshold: {report.threshold:g} -> {outcome}")
    counts = report.counts
    lines.append(
        f"files: {counts.get('files_base', 0)} -> "
        f"{counts.get('files_head', 0)} "
        f"(changed {counts.get('changed', 0)}, "
        f"added {counts.get('added', 0)}, "
        f"removed {counts.get('removed', 0)}, "
        f"unchanged {counts.get('unchanged', 0)})")
    if report.probability_deltas:
        lines.append("")
        lines.append("per-hypothesis movement:")
        for hyp_id in sorted(report.probability_deltas):
            d = report.probability_deltas[hyp_id]
            hyp_sign = "+" if d >= 0 else ""
            lines.append(f"  {hyp_id:24s} {hyp_sign}{d:.3f}")
    if report.moved_features:
        lines.append("")
        lines.append("features that moved risk most:")
        for move in report.moved_features:
            move_sign = "+" if move.delta >= 0 else ""
            lines.append(f"  {move.name:40s} {move.before:10.3f} -> "
                         f"{move.after:10.3f} ({move_sign}{move.delta:.3f})")
    if report.files:
        lines.append("")
        lines.append("files driving the change:")
        for delta in report.files:
            lines.append(
                f"  [{delta.status:7s}] {delta.path}  (score "
                f"{delta.score:.1f})")
            for move in delta.drivers:
                move_sign = "+" if move.delta >= 0 else ""
                lines.append(f"      {move.name:36s} "
                             f"{move_sign}{move.delta:g}")
    if report.truncated_files:
        lines.append(f"  ... and {report.truncated_files} more "
                     f"lower-scoring file(s)")
    return "\n".join(lines)


def top_feature_summary(report: GateReport, k: int = 3) -> List[str]:
    """Compact ``name:+delta`` strings for stream/watch event lines."""
    out = []
    for move in report.moved_features[:k]:
        sign = "+" if move.delta >= 0 else ""
        out.append(f"{move.name}:{sign}{move.delta:.4g}")
    return out
