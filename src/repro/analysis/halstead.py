"""Halstead complexity measures [37].

Halstead's software-science metrics derive from four token counts:
distinct operators (n1), distinct operands (n2), total operators (N1), and
total operands (N2). From these we compute vocabulary, length, volume,
difficulty, effort, estimated time, and Halstead's famous "delivered bugs"
estimate B = V / 3000 — one of the earliest attempts at exactly the kind of
defect prediction the paper generalises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import OPERAND_KINDS, OPERATOR_KINDS, Token


@dataclass(frozen=True)
class HalsteadMetrics:
    """The full Halstead measure set for a token stream."""

    distinct_operators: int
    distinct_operands: int
    total_operators: int
    total_operands: int

    @property
    def vocabulary(self) -> int:
        """n = n1 + n2."""
        return self.distinct_operators + self.distinct_operands

    @property
    def length(self) -> int:
        """N = N1 + N2."""
        return self.total_operators + self.total_operands

    @property
    def estimated_length(self) -> float:
        """N^ = n1*log2(n1) + n2*log2(n2)."""
        n1, n2 = self.distinct_operators, self.distinct_operands
        est = 0.0
        if n1 > 0:
            est += n1 * math.log2(n1)
        if n2 > 0:
            est += n2 * math.log2(n2)
        return est

    @property
    def volume(self) -> float:
        """V = N * log2(n)."""
        if self.vocabulary == 0:
            return 0.0
        return self.length * math.log2(self.vocabulary)

    @property
    def difficulty(self) -> float:
        """D = (n1/2) * (N2/n2)."""
        if self.distinct_operands == 0:
            return 0.0
        return (self.distinct_operators / 2.0) * (
            self.total_operands / self.distinct_operands
        )

    @property
    def effort(self) -> float:
        """E = D * V."""
        return self.difficulty * self.volume

    @property
    def time_seconds(self) -> float:
        """T = E / 18 (Stroud number)."""
        return self.effort / 18.0

    @property
    def estimated_bugs(self) -> float:
        """B = V / 3000 — Halstead's delivered-bug estimate."""
        return self.volume / 3000.0

    def __add__(self, other: "HalsteadMetrics") -> "HalsteadMetrics":
        """Aggregate two measures.

        Distinct counts are not additive in general; summing them gives the
        standard per-file-summed approximation used by metric suites like
        CCCC when reporting project totals.
        """
        return HalsteadMetrics(
            distinct_operators=self.distinct_operators + other.distinct_operators,
            distinct_operands=self.distinct_operands + other.distinct_operands,
            total_operators=self.total_operators + other.total_operators,
            total_operands=self.total_operands + other.total_operands,
        )


_EMPTY = HalsteadMetrics(0, 0, 0, 0)


def measure_tokens(tokens: Iterable[Token]) -> HalsteadMetrics:
    """Compute Halstead counts over a token stream.

    Keywords, operators, and punctuation are operators; identifiers and
    literals are operands. Comments/newlines are ignored.
    """
    operators: set = set()
    operands: set = set()
    n_operators = 0
    n_operands = 0
    for tok in tokens:
        if tok.kind in OPERATOR_KINDS:
            operators.add(tok.text)
            n_operators += 1
        elif tok.kind in OPERAND_KINDS:
            operands.add(tok.text)
            n_operands += 1
    return HalsteadMetrics(
        distinct_operators=len(operators),
        distinct_operands=len(operands),
        total_operators=n_operators,
        total_operands=n_operands,
    )


def measure_file(source: SourceFile) -> HalsteadMetrics:
    """Halstead measures for one source file."""
    return measure_tokens(source.tokens)


def measure_codebase(codebase: Codebase) -> HalsteadMetrics:
    """Per-file-summed Halstead measures for a whole codebase."""
    total = _EMPTY
    for source in codebase:
        total = total + measure_file(source)
    return total
