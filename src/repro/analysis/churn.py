"""Code churn and developer-activity metrics (Shin et al. [61]).

The paper's §4 anchor study showed that complexity, *code churn*, and
*developer activity* metrics predict 80% of vulnerable files. This module
defines the commit-history model those metrics are computed from and the
metric computations themselves; :mod:`repro.synth.history` generates
calibrated synthetic histories (real VCS data is unavailable offline — see
DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx


@dataclass(frozen=True)
class FileDelta:
    """Change to one file within a commit."""

    path: str
    lines_added: int
    lines_deleted: int


@dataclass(frozen=True)
class Commit:
    """One commit: author, timestamp (days since project start), deltas."""

    author: str
    day: int
    deltas: Tuple[FileDelta, ...]

    @property
    def touched(self) -> Set[str]:
        return {d.path for d in self.deltas}


@dataclass
class CommitHistory:
    """A project's commit history, ordered by day."""

    commits: List[Commit] = field(default_factory=list)

    def add(self, commit: Commit) -> None:
        self.commits.append(commit)
        self.commits.sort(key=lambda c: c.day)

    @property
    def files(self) -> Set[str]:
        out: Set[str] = set()
        for c in self.commits:
            out |= c.touched
        return out

    @property
    def authors(self) -> Set[str]:
        return {c.author for c in self.commits}

    @property
    def span_days(self) -> int:
        if not self.commits:
            return 0
        return self.commits[-1].day - self.commits[0].day


@dataclass(frozen=True)
class FileChurn:
    """Churn metrics for one file (Shin et al.'s churn dimension)."""

    path: str
    n_commits: int
    lines_added: int
    lines_deleted: int
    n_authors: int
    days_active: int

    @property
    def total_churn(self) -> int:
        return self.lines_added + self.lines_deleted

    @property
    def churn_per_commit(self) -> float:
        return self.total_churn / self.n_commits if self.n_commits else 0.0


def file_churn(history: CommitHistory) -> Dict[str, FileChurn]:
    """Per-file churn metrics over the whole history."""
    stats: Dict[str, Dict] = {}
    for commit in history.commits:
        for delta in commit.deltas:
            s = stats.setdefault(
                delta.path,
                {"commits": 0, "added": 0, "deleted": 0,
                 "authors": set(), "first": commit.day, "last": commit.day},
            )
            s["commits"] += 1
            s["added"] += delta.lines_added
            s["deleted"] += delta.lines_deleted
            s["authors"].add(commit.author)
            s["first"] = min(s["first"], commit.day)
            s["last"] = max(s["last"], commit.day)
    return {
        path: FileChurn(
            path=path,
            n_commits=s["commits"],
            lines_added=s["added"],
            lines_deleted=s["deleted"],
            n_authors=len(s["authors"]),
            days_active=s["last"] - s["first"],
        )
        for path, s in stats.items()
    }


def developer_network(history: CommitHistory) -> nx.Graph:
    """Developer collaboration network: authors linked by shared files.

    Shin et al. derive "developer activity" metrics from exactly this
    contribution network (central vs. peripheral developers).
    """
    by_file: Dict[str, Set[str]] = {}
    for commit in history.commits:
        for path in commit.touched:
            by_file.setdefault(path, set()).add(commit.author)
    graph = nx.Graph()
    graph.add_nodes_from(history.authors)
    for authors in by_file.values():
        ordered = sorted(authors)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                graph.add_edge(a, b)
    return graph


@dataclass(frozen=True)
class DeveloperActivityMetrics:
    """Codebase-level developer-activity summary."""

    n_authors: int
    n_commits: int
    mean_authors_per_file: float
    max_authors_per_file: int
    network_density: float
    n_peripheral_authors: int  # degree 0 or 1 in the collaboration network


def developer_activity(history: CommitHistory) -> DeveloperActivityMetrics:
    """Compute developer-activity metrics from ``history``."""
    churn = file_churn(history)
    per_file = [c.n_authors for c in churn.values()]
    network = developer_network(history)
    n_authors = network.number_of_nodes()
    density = nx.density(network) if n_authors > 1 else 0.0
    peripheral = sum(1 for v in network if network.degree(v) <= 1)
    return DeveloperActivityMetrics(
        n_authors=n_authors,
        n_commits=len(history.commits),
        mean_authors_per_file=(sum(per_file) / len(per_file)) if per_file else 0.0,
        max_authors_per_file=max(per_file, default=0),
        network_density=density,
        n_peripheral_authors=peripheral,
    )


@dataclass(frozen=True)
class ChurnMetrics:
    """Codebase-level churn summary for the core feature vector."""

    total_churn: int
    mean_file_churn: float
    max_file_churn: int
    n_high_churn_files: int  # above 2x the mean
    relative_churn: float  # churn normalised by lines added overall


def churn_metrics(history: CommitHistory) -> ChurnMetrics:
    """Aggregate churn metrics over ``history``."""
    churn = file_churn(history)
    totals = [c.total_churn for c in churn.values()]
    if not totals:
        return ChurnMetrics(0, 0.0, 0, 0, 0.0)
    total = sum(totals)
    mean = total / len(totals)
    added = sum(c.lines_added for c in churn.values())
    return ChurnMetrics(
        total_churn=total,
        mean_file_churn=mean,
        max_file_churn=max(totals),
        n_high_churn_files=sum(1 for t in totals if t > 2 * mean),
        relative_churn=total / added if added else 0.0,
    )
