"""McCabe cyclomatic complexity [47].

The complexity of a function is 1 plus the number of decision points in its
body: branching keywords, loop keywords, ``case`` labels, short-circuit
boolean operators, and the ternary operator (per language, the decision
token set lives on the :class:`~repro.lang.languages.LanguageSpec`).
A file's complexity is the sum over its functions plus 1 for any residual
top-level decision tokens; a codebase's complexity is the sum over files —
the same whole-program figure the paper plots in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lang.parser import FunctionInfo, extract_functions
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import Token, TokenKind


@dataclass(frozen=True)
class ComplexityReport:
    """Cyclomatic complexity of one function."""

    name: str
    start_line: int
    complexity: int


def decision_count(tokens: Iterable[Token], decision_tokens) -> int:
    """Number of decision points in a token stream."""
    count = 0
    keyword = TokenKind.KEYWORD
    operator = TokenKind.OPERATOR
    for tok in tokens:
        # KEYWORD/OPERATOR tokens are code by definition, so the kind
        # test alone also rejects every non-code token.
        kind = tok.kind
        if (kind is keyword or kind is operator) \
                and tok.text in decision_tokens:
            count += 1
    return count


def function_complexity(func: FunctionInfo, source: SourceFile) -> int:
    """McCabe complexity of one function: decisions in its body + 1."""
    return decision_count(func.body_tokens, source.spec.decision_tokens) + 1


def file_complexities(source: SourceFile) -> List[ComplexityReport]:
    """Per-function complexity reports for a file, in source order."""
    reports = [
        ComplexityReport(f.name, f.start_line, function_complexity(f, source))
        for f in extract_functions(source)
    ]
    reports.sort(key=lambda r: r.start_line)
    return reports


def _stray_decisions(
    source: SourceFile,
    covered: List[Tuple[int, int]],
    code_tokens: Optional[List[Token]] = None,
) -> int:
    """Decision tokens on lines outside every covered (start, end) range."""
    tokens = source.tokens if code_tokens is None else code_tokens
    decision_tokens = source.spec.decision_tokens
    stray = 0
    keyword = TokenKind.KEYWORD
    operator = TokenKind.OPERATOR
    for tok in tokens:
        # KEYWORD/OPERATOR tokens are code by definition (see
        # ``decision_count``).
        kind = tok.kind
        if kind is not keyword and kind is not operator:
            continue
        if tok.text not in decision_tokens:
            continue
        if any(lo <= tok.line <= hi for lo, hi in covered):
            continue
        stray += 1
    return stray


def file_complexity(source: SourceFile) -> int:
    """Total file complexity: sum over functions, min 1 for non-empty files.

    Decision tokens outside any recovered function (e.g. top-level Python
    code, macros) are counted once more so they are not silently dropped.
    """
    functions = extract_functions(source)
    covered = [(f.start_line, f.end_line) for f in functions]
    total = sum(function_complexity(f, source) for f in functions)
    return total + _stray_decisions(source, covered)


def file_summary(
    source: SourceFile,
    functions: Optional[List[FunctionInfo]] = None,
    code_tokens: Optional[List[Token]] = None,
) -> Tuple[int, List[ComplexityReport]]:
    """(file total, per-function reports) computing each complexity once.

    Equivalent to ``(file_complexity(source), file_complexities(source))``
    but shares one function extraction and one complexity pass between the
    two; ``functions``/``code_tokens`` let the analysis artifact supply its
    cached views.
    """
    if functions is None:
        functions = extract_functions(source)
    complexities = [function_complexity(f, source) for f in functions]
    reports = [
        ComplexityReport(f.name, f.start_line, c)
        for f, c in zip(functions, complexities)
    ]
    reports.sort(key=lambda r: r.start_line)
    covered = [(f.start_line, f.end_line) for f in functions]
    total = sum(complexities) + _stray_decisions(source, covered, code_tokens)
    return total, reports


def codebase_complexity(codebase: Codebase) -> int:
    """Whole-program cyclomatic complexity (Figure 3's x-axis)."""
    return sum(file_complexity(source) for source in codebase)


def complexity_distribution(codebase: Codebase) -> Dict[str, float]:
    """Summary statistics of per-function complexity across a codebase.

    Returns mean/max/p90 and the share of functions exceeding McCabe's
    classic threshold of 10 — all of which feed the core feature vector.
    """
    values: List[int] = []
    for source in codebase:
        values.extend(r.complexity for r in file_complexities(source))
    return distribution_from_values(values)


def distribution_from_values(values: Sequence[int]) -> Dict[str, float]:
    """The :func:`complexity_distribution` statistics from raw values.

    Split out so the incremental-extraction merge phase can rebuild the
    distribution from concatenated per-file value lists and land on the
    exact floats a whole-codebase pass computes.
    """
    values = list(values)
    if not values:
        return {"mean": 0.0, "max": 0.0, "p90": 0.0, "over_10": 0.0}
    values.sort()
    mean = sum(values) / len(values)
    p90 = values[min(len(values) - 1, int(0.9 * len(values)))]
    over = sum(1 for v in values if v > 10) / len(values)
    return {"mean": mean, "max": float(values[-1]), "p90": float(p90), "over_10": over}
