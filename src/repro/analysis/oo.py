"""Object-oriented design-security metrics (Alshammari et al. [16]).

§3.2 discusses "security metrics for object-oriented class designs [that]
measure accessibility of objects … interactions among classes". These are
the implementable core of that family on recovered class structure:

- class counts and method distribution;
- *accessibility*: how much of a class's surface (methods, fields) is
  public — Alshammari's central quantity;
- *coupling*: calls from one class's methods to another class's methods
  (CBO-style, name-resolved);
- inheritance depth (deep hierarchies widen the accessible surface).

C code yields zeros throughout (no classes), which is itself a signal
the model can use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lang.parser import ClassInfo, extract_classes
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import TokenKind

_JAVA_FIELD_RE = re.compile(
    r"^\s*(public|private|protected)\s+(?:static\s+|final\s+)*"
    r"[A-Za-z_][\w<>\[\]]*\s+([A-Za-z_]\w*)\s*[;=]",
    re.MULTILINE,
)


@dataclass(frozen=True)
class ClassDesignMetrics:
    """Codebase-level OO design-security summary."""

    n_classes: int
    mean_methods_per_class: float
    max_methods_per_class: int
    public_method_fraction: float
    public_field_fraction: float  # Java fields / Python public attributes
    mean_coupling: float  # cross-class call edges per class
    max_coupling: int
    max_inheritance_depth: int

    @property
    def accessibility(self) -> float:
        """Alshammari-style accessibility: public share of the surface."""
        return (self.public_method_fraction + self.public_field_fraction) / 2.0


def _inheritance_edges(source: SourceFile, code_tokens=None) -> Dict[str, str]:
    """Child-class -> parent-class edges recovered from headers."""
    edges: Dict[str, str] = {}
    tokens = (
        [t for t in source.tokens if t.is_code()]
        if code_tokens is None
        else code_tokens
    )
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.KEYWORD or tok.text not in ("class",):
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].kind != TokenKind.IDENT:
            continue
        child = tokens[i + 1].text
        # Java: class A extends B | Python: class A(B) | C++: class A : B
        j = i + 2
        while j < len(tokens) and tokens[j].text not in ("{", ":", "(", ";"):
            if tokens[j].text == "extends" and j + 1 < len(tokens):
                edges[child] = tokens[j + 1].text
                break
            j += 1
        if child in edges or j >= len(tokens):
            continue
        # Python bases sit in parens (the header colon opens the block);
        # C++ bases follow a colon (after access specifiers).
        opener = "(" if source.spec.name == "python" else ":"
        if tokens[j].text == opener and source.spec.name in ("python", "cpp"):
            k = j + 1
            while k < len(tokens) and tokens[k].kind == TokenKind.KEYWORD:
                k += 1
            if k < len(tokens) and tokens[k].kind == TokenKind.IDENT:
                edges[child] = tokens[k].text
    return edges


def _depth(edges: Dict[str, str], cls: str) -> int:
    depth = 0
    seen = {cls}
    while cls in edges:
        cls = edges[cls]
        if cls in seen:  # defensive: cyclic header noise
            break
        seen.add(cls)
        depth += 1
    return depth


def _field_visibility(source: SourceFile, cls: ClassInfo) -> Tuple[int, int]:
    """(public fields, total visibility-annotated fields) for one class."""
    if source.spec.name == "java":
        body = "\n".join(
            source.lines[cls.start_line - 1 : cls.end_line]
        )
        public = total = 0
        for match in _JAVA_FIELD_RE.finditer(body):
            total += 1
            if match.group(1) == "public":
                public += 1
        return public, total
    if source.spec.name == "python":
        # Attributes assigned as self.<name> inside methods.
        names: Set[str] = set()
        for method in cls.methods:
            tokens = method.body_tokens  # already code-filtered by the parser
            for i in range(len(tokens) - 2):
                if (
                    tokens[i].text == "self"
                    and tokens[i + 1].text == "."
                    and tokens[i + 2].kind == TokenKind.IDENT
                ):
                    # self.name( is a method call, not a field.
                    if i + 3 < len(tokens) and tokens[i + 3].text == "(":
                        continue
                    names.add(tokens[i + 2].text)
        if not names:
            return 0, 0
        public = sum(1 for n in names if not n.startswith("_"))
        return public, len(names)
    return 0, 0


def measure_codebase(codebase: Codebase, artifacts=None) -> ClassDesignMetrics:
    """Compute OO design metrics over every class in ``codebase``.

    ``artifacts`` maps paths to per-file analysis artifacts
    (``.classes``/``.code_tokens``) so the pass reuses the shared parse.
    """
    all_classes: List[Tuple[SourceFile, ClassInfo]] = []
    inheritance: Dict[str, str] = {}
    method_owner: Dict[str, str] = {}
    for source in codebase:
        art = artifacts.get(source.path) if artifacts is not None else None
        classes = art.classes if art is not None else extract_classes(source)
        for cls in classes:
            all_classes.append((source, cls))
            for method in cls.methods:
                method_owner.setdefault(method.name, cls.name)
        inheritance.update(
            _inheritance_edges(
                source, art.code_tokens if art is not None else None
            )
        )

    if not all_classes:
        return ClassDesignMetrics(0, 0.0, 0, 0.0, 0.0, 0.0, 0, 0)

    methods_per_class = [len(cls.methods) for _, cls in all_classes]
    public_methods = sum(
        1 for _, cls in all_classes for m in cls.methods if m.is_public
    )
    total_methods = sum(methods_per_class)

    public_fields = total_fields = 0
    for source, cls in all_classes:
        pub, tot = _field_visibility(source, cls)
        public_fields += pub
        total_fields += tot

    couplings: List[int] = []
    for _, cls in all_classes:
        coupled: Set[str] = set()
        for method in cls.methods:
            tokens = method.body_tokens  # already code-filtered by the parser
            for i, tok in enumerate(tokens[:-1]):
                if tok.kind != TokenKind.IDENT or tokens[i + 1].text != "(":
                    continue
                owner = method_owner.get(tok.text)
                if owner is not None and owner != cls.name:
                    coupled.add(owner)
        couplings.append(len(coupled))

    depths = [_depth(inheritance, cls.name) for _, cls in all_classes]

    return ClassDesignMetrics(
        n_classes=len(all_classes),
        mean_methods_per_class=total_methods / len(all_classes),
        max_methods_per_class=max(methods_per_class),
        public_method_fraction=(
            public_methods / total_methods if total_methods else 0.0
        ),
        public_field_fraction=(
            public_fields / total_fields if total_fields else 0.0
        ),
        mean_coupling=sum(couplings) / len(couplings),
        max_coupling=max(couplings),
        max_inheritance_depth=max(depths, default=0),
    )
