"""Identifier-quality metrics.

The code-smell literature the paper cites (§3) treats naming quality as a
bad-practice signal: single-letter names outside loop counters, cryptic
abbreviations, and low vocabulary diversity correlate with hard-to-review
code. These metrics quantify the identifier population of a codebase.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Counter as CounterT, Iterable

from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import TokenKind

#: Names conventionally fine as single letters (loop counters etc.).
_CONVENTIONAL_SHORT = frozenset({"i", "j", "k", "n", "m", "x", "y", "z", "_"})


@dataclass(frozen=True)
class IdentifierMetrics:
    """Identifier-population statistics for a file or codebase."""

    n_occurrences: int
    n_distinct: int
    mean_length: float
    short_name_fraction: float  # 1-2 chars, excluding conventional counters
    numeric_suffix_fraction: float  # data2, buf3, ...: copy-paste smell
    entropy: float  # Shannon entropy of the identifier distribution (bits)

    @property
    def vocabulary_richness(self) -> float:
        """Distinct / total occurrences (type-token ratio)."""
        return self.n_distinct / self.n_occurrences if self.n_occurrences else 0.0


def _identifier_counts(sources: Iterable[SourceFile]) -> CounterT[str]:
    counts: CounterT[str] = Counter()
    for source in sources:
        for tok in source.tokens:
            if tok.kind == TokenKind.IDENT:
                counts[tok.text] += 1
    return counts


def _has_numeric_suffix(name: str) -> bool:
    return len(name) > 1 and name[-1].isdigit() and not name.isdigit()


def _metrics_from_counts(counts: CounterT[str]) -> IdentifierMetrics:
    total = sum(counts.values())
    if total == 0:
        return IdentifierMetrics(0, 0, 0.0, 0.0, 0.0, 0.0)
    distinct = len(counts)
    mean_length = sum(len(name) * c for name, c in counts.items()) / total
    short = sum(
        c
        for name, c in counts.items()
        if len(name) <= 2 and name not in _CONVENTIONAL_SHORT
    )
    numeric = sum(c for name, c in counts.items() if _has_numeric_suffix(name))
    entropy = 0.0
    for c in counts.values():
        p = c / total
        entropy -= p * math.log2(p)
    return IdentifierMetrics(
        n_occurrences=total,
        n_distinct=distinct,
        mean_length=mean_length,
        short_name_fraction=short / total,
        numeric_suffix_fraction=numeric / total,
        entropy=entropy,
    )


def file_counts(source: SourceFile, code_tokens=None) -> CounterT[str]:
    """The identifier counter of one file, in first-occurrence order.

    Insertion order is part of the contract: merging per-file counters
    in path order recreates the codebase counter's key order exactly,
    which the float-summed statistics of :func:`metrics_from_counts`
    depend on for bit-identical results.

    ``code_tokens`` lets the analysis artifact supply its cached filtered
    stream; comments and newlines are never IDENT tokens, so counting over
    it preserves both the counts and the first-occurrence key order.
    """
    if code_tokens is None:
        return _identifier_counts([source])
    counts: CounterT[str] = Counter()
    for tok in code_tokens:
        if tok.kind == TokenKind.IDENT:
            counts[tok.text] += 1
    return counts


def metrics_from_counts(counts) -> IdentifierMetrics:
    """Identifier metrics from an already-merged counter/mapping.

    Used by the incremental-extraction merge phase; iteration order of
    ``counts`` must match what a whole-codebase scan would produce.
    """
    return _metrics_from_counts(counts)


def measure_file(source: SourceFile) -> IdentifierMetrics:
    """Identifier metrics for one file."""
    return _metrics_from_counts(_identifier_counts([source]))


def measure_codebase(codebase: Codebase) -> IdentifierMetrics:
    """Identifier metrics over a whole codebase."""
    return _metrics_from_counts(_identifier_counts(codebase))
