"""Dynamic-trace collection via CFG simulation (§5.3).

"One potential improvement is to collect dynamic traces; dynamic
properties of a program may further yield additional insights or
accuracy." With no testbed to execute real programs, we approximate a
tracer by random-walking each function's control-flow graph: entry to
exit, uniform choice at branches, bounded steps. The walks yield the
classic dynamic-analysis aggregates — node/edge coverage, hot-path
concentration, trace length, and how often dangerous calls actually
*execute* (as opposed to merely existing, which the static features
already count).

Deterministic per (codebase name, seed), so feature extraction stays
reproducible.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import TAINT_SINKS
from repro.lang.parser import extract_functions
from repro.lang.sourcefile import Codebase
from repro.lang.tokens import TokenKind


@dataclass(frozen=True)
class TraceResult:
    """Aggregated simulation result for one function."""

    n_walks: int
    node_coverage: float  # fraction of CFG nodes ever visited
    edge_coverage: float  # fraction of CFG edges ever taken
    mean_trace_length: float
    hot_concentration: float  # max node visit share (1.0 = single hot node)
    dangerous_executions: int  # sink-call statements actually reached
    truncated_walks: int  # walks that hit the step cap (loops)


def _node_is_dangerous(cfg: CFG, node: int) -> bool:
    stmt = cfg.graph.nodes[node].get("stmt")
    if stmt is None:
        return False
    tokens = stmt.tokens
    for i, tok in enumerate(tokens[:-1]):
        if (
            tok.kind == TokenKind.IDENT
            and tok.text in TAINT_SINKS
            and tokens[i + 1].text == "("
        ):
            return True
    return False


def simulate_cfg(
    cfg: CFG, n_walks: int = 20, max_steps: int = 200, seed: int = 0
) -> TraceResult:
    """Random-walk ``cfg`` and aggregate the trace statistics."""
    if n_walks < 1:
        raise ValueError("n_walks must be >= 1")
    rng = random.Random(seed)
    visited_nodes: Set[int] = set()
    visited_edges: Set[Tuple[int, int]] = set()
    visit_counts: Dict[int, int] = {}
    total_length = 0
    dangerous = 0
    truncated = 0
    dangerous_nodes = {
        node for node in cfg.graph.nodes if _node_is_dangerous(cfg, node)
    }

    for _ in range(n_walks):
        node = cfg.entry
        steps = 0
        while node != cfg.exit and steps < max_steps:
            visited_nodes.add(node)
            visit_counts[node] = visit_counts.get(node, 0) + 1
            if node in dangerous_nodes:
                dangerous += 1
            successors = list(cfg.graph.successors(node))
            if not successors:
                break
            nxt = rng.choice(successors)
            visited_edges.add((node, nxt))
            node = nxt
            steps += 1
        total_length += steps
        if steps >= max_steps:
            truncated += 1
        if node == cfg.exit:
            visited_nodes.add(node)
            visit_counts[node] = visit_counts.get(node, 0) + 1

    n_nodes = max(cfg.n_nodes, 1)
    n_edges = max(cfg.n_edges, 1)
    total_visits = max(sum(visit_counts.values()), 1)
    return TraceResult(
        n_walks=n_walks,
        node_coverage=len(visited_nodes) / n_nodes,
        edge_coverage=len(visited_edges) / n_edges,
        mean_trace_length=total_length / n_walks,
        hot_concentration=max(visit_counts.values(), default=0) / total_visits,
        dangerous_executions=dangerous,
        truncated_walks=truncated,
    )


@dataclass(frozen=True)
class DynamicMetrics:
    """Codebase-level dynamic-trace feature summary."""

    mean_node_coverage: float
    mean_edge_coverage: float
    mean_trace_length: float
    mean_hot_concentration: float
    dangerous_executions: int
    truncation_rate: float


def measure_codebase(
    codebase: Codebase,
    n_walks: int = 10,
    max_steps: int = 150,
    seed: int = 0,
    artifacts=None,
) -> DynamicMetrics:
    """Simulate every function of ``codebase`` and aggregate.

    ``artifacts`` maps paths to per-file analysis artifacts
    (``.functions``/``.cfgs``, index-aligned) so the simulation reuses
    the shared CFGs; walk seeds depend only on the function index, which
    the shared table preserves.
    """
    results: List[TraceResult] = []
    for source in codebase:
        art = artifacts.get(source.path) if artifacts is not None else None
        if art is not None:
            cfgs = art.cfgs
        else:
            cfgs = [
                build_cfg(func, source) for func in extract_functions(source)
            ]
        for index, cfg in enumerate(cfgs):
            # zlib.crc32, not hash(): str hashing is salted per process
            # and would make feature extraction non-reproducible.
            walk_seed = zlib.crc32(
                f"{codebase.name}:{source.path}:{index}:{seed}".encode()
            )
            results.append(
                simulate_cfg(
                    cfg, n_walks=n_walks, max_steps=max_steps, seed=walk_seed
                )
            )
    if not results:
        return DynamicMetrics(0.0, 0.0, 0.0, 0.0, 0, 0.0)
    n = len(results)
    total_walks = sum(r.n_walks for r in results)
    return DynamicMetrics(
        mean_node_coverage=sum(r.node_coverage for r in results) / n,
        mean_edge_coverage=sum(r.edge_coverage for r in results) / n,
        mean_trace_length=sum(r.mean_trace_length for r in results) / n,
        mean_hot_concentration=sum(r.hot_concentration for r in results) / n,
        dangerous_executions=sum(r.dangerous_executions for r in results),
        truncation_rate=sum(r.truncated_walks for r in results)
        / max(total_walks, 1),
    )
