"""Function- and declaration-level metrics.

These are the "most basic properties of code files" that Shin et al. [61]
found predictive of vulnerable files, which the paper builds on (§4):
number of functions, number of declarations, number of input arguments,
function lengths, nesting depth, and variable counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.lang.parser import FunctionInfo, extract_functions
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import TokenKind

_C_TYPE_KEYWORDS = frozenset(
    {"int", "char", "float", "double", "long", "short", "unsigned", "signed",
     "void", "bool", "_Bool", "struct", "union", "enum", "const", "static",
     "auto", "register", "volatile"}
)
_JAVA_TYPE_KEYWORDS = frozenset(
    {"int", "char", "float", "double", "long", "short", "boolean", "byte",
     "final", "static", "var"}
)
_PY_DECL_KEYWORDS = frozenset({"def", "class", "lambda", "global", "nonlocal"})


@dataclass(frozen=True)
class FunctionMetrics:
    """Aggregated function-shape metrics for a file or codebase."""

    n_functions: int
    n_public_functions: int
    total_params: int
    max_params: int
    mean_length: float
    max_length: int
    mean_nesting: float
    max_nesting: int
    n_declarations: int
    n_variables: int

    @property
    def mean_params(self) -> float:
        """Average parameter count per function."""
        return self.total_params / self.n_functions if self.n_functions else 0.0


def count_declarations(source: SourceFile, code_tokens=None) -> int:
    """Approximate declaration count for a file.

    For C-family/Java: a type keyword followed by an identifier. For
    Python: def/class/lambda/global/nonlocal plus first-bindings via ``=``
    are approximated by counting def/class/lambda statements.
    ``code_tokens`` lets the analysis artifact supply the filtered stream.
    """
    tokens = (
        [t for t in source.tokens if t.is_code()]
        if code_tokens is None
        else code_tokens
    )
    if source.spec.name == "python":
        return sum(
            1
            for t in tokens
            if t.kind == TokenKind.KEYWORD and t.text in _PY_DECL_KEYWORDS
        )
    type_kw = _JAVA_TYPE_KEYWORDS if source.spec.name == "java" else _C_TYPE_KEYWORDS
    count = 0
    for i in range(len(tokens) - 1):
        if (
            tokens[i].kind == TokenKind.KEYWORD
            and tokens[i].text in type_kw
            and tokens[i + 1].kind == TokenKind.IDENT
        ):
            count += 1
    return count


def count_variables(source: SourceFile, code_tokens=None) -> int:
    """Number of distinct identifiers assigned anywhere in the file.

    Counts identifiers immediately followed by an assignment operator
    (including compound assignments); a cheap but language-agnostic proxy
    for variable count.
    """
    tokens = (
        [t for t in source.tokens if t.is_code()]
        if code_tokens is None
        else code_tokens
    )
    assigned = set()
    assign_ops = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
                  ">>=", ":="}
    for i in range(len(tokens) - 1):
        if tokens[i].kind != TokenKind.IDENT:
            continue
        nxt = tokens[i + 1]
        if nxt.kind == TokenKind.OPERATOR and nxt.text in assign_ops:
            # `a == b` is a comparison, not an assignment.
            if nxt.text == "=" and i + 2 < len(tokens) and tokens[i + 2].text == "=":
                continue
            assigned.add(tokens[i].text)
    return len(assigned)


def measure_file(source: SourceFile) -> FunctionMetrics:
    """Function-shape metrics for one file."""
    return _aggregate(extract_functions(source), [source])


def measure_codebase(codebase: Codebase) -> FunctionMetrics:
    """Function-shape metrics aggregated over a codebase."""
    functions: List[FunctionInfo] = []
    for source in codebase:
        functions.extend(extract_functions(source))
    return _aggregate(functions, list(codebase))


def _aggregate(functions: List[FunctionInfo], sources: List[SourceFile]) -> FunctionMetrics:
    n = len(functions)
    lengths = [f.length for f in functions]
    nestings = [f.max_nesting for f in functions]
    params = [f.param_count for f in functions]
    return FunctionMetrics(
        n_functions=n,
        n_public_functions=sum(1 for f in functions if f.is_public),
        total_params=sum(params),
        max_params=max(params, default=0),
        mean_length=sum(lengths) / n if n else 0.0,
        max_length=max(lengths, default=0),
        mean_nesting=sum(nestings) / n if n else 0.0,
        max_nesting=max(nestings, default=0),
        n_declarations=sum(count_declarations(s) for s in sources),
        n_variables=sum(count_variables(s) for s in sources),
    )


def function_table(codebase: Codebase) -> Dict[str, List[FunctionInfo]]:
    """Map each file path to its recovered functions (testbed helper)."""
    return {source.path: extract_functions(source) for source in codebase}
