"""Line-of-code counting (a ``cloc`` equivalent).

The paper computes LoC with cloc [29] and uses it both as the x-axis of
Figure 2 and as a core feature of the prediction model. This module
classifies every physical line of a file as code, comment, or blank using
the token stream (so string literals containing ``//`` are not miscounted
as comments), and aggregates per file, per language, and per codebase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import TokenKind


@dataclass(frozen=True)
class LineCounts:
    """Classified line counts for a file, language, or whole codebase."""

    code: int = 0
    comment: int = 0
    blank: int = 0
    preproc: int = 0

    @property
    def total(self) -> int:
        """Total physical lines."""
        return self.code + self.comment + self.blank

    @property
    def comment_ratio(self) -> float:
        """Comment lines as a fraction of comment+code lines."""
        denom = self.code + self.comment
        return self.comment / denom if denom else 0.0

    def __add__(self, other: "LineCounts") -> "LineCounts":
        return LineCounts(
            code=self.code + other.code,
            comment=self.comment + other.comment,
            blank=self.blank + other.blank,
            preproc=self.preproc + other.preproc,
        )


def count_file(source: SourceFile) -> LineCounts:
    """Classify each physical line of ``source``.

    A line containing any code token is a code line (even if it also holds
    a trailing comment, matching cloc's convention); a line containing only
    comment tokens is a comment line; otherwise it is blank. Preprocessor
    lines are counted as code and also tallied separately.
    """
    n_lines = len(source.lines)
    has_code = [False] * (n_lines + 2)
    has_comment = [False] * (n_lines + 2)
    is_preproc = [False] * (n_lines + 2)

    def mark(array, start_line: int, text: str) -> None:
        end_line = start_line + text.count("\n")
        for ln in range(start_line, min(end_line, n_lines) + 1):
            if ln <= n_lines:
                array[ln] = True

    # Hot path: every token kind except comments, strings, and
    # preprocessor lines is single-line by construction, so the newline
    # count (and the range walk in ``mark``) is skipped for them.
    NEWLINE = TokenKind.NEWLINE
    COMMENT = TokenKind.COMMENT
    PREPROC = TokenKind.PREPROC
    STRING = TokenKind.STRING
    for tok in source.tokens:
        kind = tok.kind
        if kind is NEWLINE:
            continue
        if kind is COMMENT:
            mark(has_comment, tok.line, tok.text)
        elif kind is PREPROC:
            mark(is_preproc, tok.line, tok.text)
            mark(has_code, tok.line, tok.text)
        elif kind is STRING:
            mark(has_code, tok.line, tok.text)
        else:
            ln = tok.line
            if ln <= n_lines:
                has_code[ln] = True

    code = comment = blank = preproc = 0
    for ln in range(1, n_lines + 1):
        if has_code[ln]:
            code += 1
            if is_preproc[ln]:
                preproc += 1
        elif has_comment[ln]:
            comment += 1
        else:
            blank += 1
    return LineCounts(code=code, comment=comment, blank=blank, preproc=preproc)


def count_codebase(codebase: Codebase) -> LineCounts:
    """Aggregate line counts over every file in ``codebase``."""
    total = LineCounts()
    for source in codebase:
        total = total + count_file(source)
    return total


def count_by_language(codebase: Codebase) -> Dict[str, LineCounts]:
    """Per-language aggregate line counts, keyed by language name."""
    per_lang: Dict[str, LineCounts] = {}
    for source in codebase:
        counts = count_file(source)
        per_lang[source.language] = per_lang.get(source.language, LineCounts()) + counts
    return per_lang


def kloc(codebase: Codebase) -> float:
    """Thousands of code lines — the unit of Figure 2's x-axis."""
    return count_codebase(codebase).code / 1000.0
