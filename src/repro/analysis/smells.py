"""Code-smell detection [45, 46, 49, 55, 58, 64, 65, 68].

"Symptoms or patterns of bad coding practice" (§3): long methods, long
parameter lists, deep nesting, god files, magic numbers, commented-out
code, TODO markers, duplicated line windows, and over-long lines. Each
detector yields :class:`Smell` records; the codebase-level counts feed the
prediction model's feature vector.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from repro.lang.parser import extract_functions
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import TokenKind


@dataclass(frozen=True)
class Smell:
    """One detected code smell."""

    kind: str
    path: str
    line: int
    detail: str


# -- thresholds (classic values from the smell literature) -------------------
LONG_METHOD_LINES = 60
LONG_PARAMETER_LIST = 5
DEEP_NESTING = 4
GOD_FILE_LINES = 1000
LONG_LINE_COLUMNS = 120
DUPLICATE_WINDOW = 6


def long_methods(source: SourceFile, functions=None) -> List[Smell]:
    """Functions longer than LONG_METHOD_LINES physical lines."""
    if functions is None:
        functions = extract_functions(source)
    return [
        Smell("long-method", source.path, f.start_line,
              f"{f.name} is {f.length} lines")
        for f in functions
        if f.length > LONG_METHOD_LINES
    ]


def long_parameter_lists(source: SourceFile, functions=None) -> List[Smell]:
    """Functions with more than LONG_PARAMETER_LIST parameters."""
    if functions is None:
        functions = extract_functions(source)
    return [
        Smell("long-parameter-list", source.path, f.start_line,
              f"{f.name} takes {f.param_count} parameters")
        for f in functions
        if f.param_count > LONG_PARAMETER_LIST
    ]


def deep_nesting(source: SourceFile, functions=None) -> List[Smell]:
    """Functions nested deeper than DEEP_NESTING levels."""
    if functions is None:
        functions = extract_functions(source)
    return [
        Smell("deep-nesting", source.path, f.start_line,
              f"{f.name} nests {f.max_nesting} levels")
        for f in functions
        if f.max_nesting > DEEP_NESTING
    ]


def god_files(source: SourceFile) -> List[Smell]:
    """Files longer than GOD_FILE_LINES physical lines."""
    n = len(source.lines)
    if n > GOD_FILE_LINES:
        return [Smell("god-file", source.path, 1, f"file is {n} lines")]
    return []


def magic_numbers(source: SourceFile) -> List[Smell]:
    """Numeric literals other than 0/1/2 outside of declarations."""
    smells = []
    trivial = {"0", "1", "2", "0.0", "1.0", "-1", "10", "100"}
    for tok in source.tokens:
        if tok.kind != TokenKind.NUMBER:
            continue
        norm = tok.text.rstrip("uUlLfF")
        if norm in trivial:
            continue
        smells.append(
            Smell("magic-number", source.path, tok.line, f"literal {tok.text}")
        )
    return smells


def todo_comments(source: SourceFile) -> List[Smell]:
    """TODO/FIXME/XXX/HACK markers in comments."""
    markers = ("TODO", "FIXME", "XXX", "HACK")
    smells = []
    for tok in source.tokens:
        if tok.kind != TokenKind.COMMENT:
            continue
        upper = tok.text.upper()
        for marker in markers:
            if marker in upper:
                smells.append(
                    Smell("todo-comment", source.path, tok.line, marker)
                )
                break
    return smells


def commented_out_code(source: SourceFile) -> List[Smell]:
    """Comments that look like disabled code (end in ';' or contain '=')."""
    smells = []
    for tok in source.tokens:
        if tok.kind != TokenKind.COMMENT:
            continue
        body = tok.text
        for marker in source.spec.line_comment:
            if body.startswith(marker):
                body = body[len(marker):]
                break
        body = body.strip().rstrip("*/").strip()
        looks_like_code = (
            body.endswith(";")
            or body.endswith("{")
            or body.startswith(("if (", "for (", "while (", "return "))
        )
        if looks_like_code and len(body) > 4:
            smells.append(
                Smell("commented-out-code", source.path, tok.line, body[:40])
            )
    return smells


def long_lines(source: SourceFile) -> List[Smell]:
    """Physical lines longer than LONG_LINE_COLUMNS columns."""
    return [
        Smell("long-line", source.path, i + 1, f"{len(line)} columns")
        for i, line in enumerate(source.lines)
        if len(line) > LONG_LINE_COLUMNS
    ]


def duplicate_code(source: SourceFile) -> List[Smell]:
    """Repeated windows of DUPLICATE_WINDOW consecutive non-blank lines."""
    lines = [ln.strip() for ln in source.lines]
    meaningful = [(i + 1, ln) for i, ln in enumerate(lines) if ln]
    seen: Dict[str, int] = {}
    smells = []
    for start in range(len(meaningful) - DUPLICATE_WINDOW + 1):
        window = meaningful[start : start + DUPLICATE_WINDOW]
        digest = hashlib.sha1(
            "\n".join(ln for _, ln in window).encode()
        ).hexdigest()
        first = seen.setdefault(digest, window[0][0])
        if first != window[0][0]:
            smells.append(
                Smell("duplicate-code", source.path, window[0][0],
                      f"duplicates lines starting at {first}")
            )
    return smells


ALL_DETECTORS: Dict[str, Callable[[SourceFile], List[Smell]]] = {
    "long-method": long_methods,
    "long-parameter-list": long_parameter_lists,
    "deep-nesting": deep_nesting,
    "god-file": god_files,
    "magic-number": magic_numbers,
    "todo-comment": todo_comments,
    "commented-out-code": commented_out_code,
    "long-line": long_lines,
    "duplicate-code": duplicate_code,
}


#: Detectors that consume the function table (get the shared one passed).
_FUNCTION_DETECTORS = frozenset(
    {"long-method", "long-parameter-list", "deep-nesting"}
)


def detect_file(source: SourceFile, functions=None) -> List[Smell]:
    """Run every detector over one file.

    ``functions`` lets the analysis artifact supply its cached function
    table to the detectors that need one; the final sort is stable, so
    detector-order ties are unchanged either way.
    """
    smells: List[Smell] = []
    for kind, detector in ALL_DETECTORS.items():
        if kind in _FUNCTION_DETECTORS:
            smells.extend(detector(source, functions))
        else:
            smells.extend(detector(source))
    smells.sort(key=lambda s: (s.line, s.kind))
    return smells


def detect_codebase(codebase: Codebase) -> List[Smell]:
    """Run every detector over every file of ``codebase``."""
    smells: List[Smell] = []
    for source in codebase:
        smells.extend(detect_file(source))
    return smells


def smell_counts(codebase: Codebase) -> Dict[str, int]:
    """Per-kind smell counts — the shape the feature vector consumes."""
    counts = {kind: 0 for kind in ALL_DETECTORS}
    for smell in detect_codebase(codebase):
        counts[smell.kind] += 1
    return counts
