"""Maintainability Index — the classic composite of the §3 metrics.

MI = 171 - 5.2*ln(Halstead volume) - 0.23*(cyclomatic) - 16.2*ln(LoC),
optionally with the comment bonus, normalised to [0, 100] as popularised
by Visual Studio. It is the original "weighted aggregation of multiple
metrics" — a fixed-weight ancestor of the paper's learned model, and a
useful single-number feature/baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.analysis import cyclomatic, halstead, loc
from repro.lang.parser import extract_functions
from repro.lang.sourcefile import Codebase, SourceFile


@dataclass(frozen=True)
class MaintainabilityReport:
    """MI for one scope (function, file, or codebase)."""

    name: str
    raw_mi: float  # the classic unbounded value
    comment_bonus: float

    @property
    def mi(self) -> float:
        """Normalised MI in [0, 100] (Visual Studio convention)."""
        value = (self.raw_mi + self.comment_bonus) * 100.0 / 171.0
        return max(0.0, min(100.0, value))

    @property
    def band(self) -> str:
        """Green (>= 20), yellow (>= 10), red — the common traffic light."""
        if self.mi >= 20.0:
            return "GREEN"
        if self.mi >= 10.0:
            return "YELLOW"
        return "RED"


def _raw_mi(volume: float, complexity: float, lines: float) -> float:
    safe_volume = max(volume, 1.0)
    safe_lines = max(lines, 1.0)
    return (
        171.0
        - 5.2 * math.log(safe_volume)
        - 0.23 * complexity
        - 16.2 * math.log(safe_lines)
    )


def _comment_bonus(comment_ratio: float) -> float:
    # 50 * sin(sqrt(2.4 * perCM)) — the classic (rarely loved) term.
    return 50.0 * math.sin(math.sqrt(2.4 * max(comment_ratio, 0.0)))


def measure_file(source: SourceFile) -> MaintainabilityReport:
    """MI for one file."""
    counts = loc.count_file(source)
    volume = halstead.measure_file(source).volume
    complexity = cyclomatic.file_complexity(source)
    return MaintainabilityReport(
        name=source.path,
        raw_mi=_raw_mi(volume, complexity, counts.code),
        comment_bonus=_comment_bonus(counts.comment_ratio),
    )


def measure_functions(source: SourceFile) -> List[MaintainabilityReport]:
    """Per-function MI reports for one file."""
    reports = []
    for func in extract_functions(source):
        volume = halstead.measure_tokens(func.body_tokens).volume
        complexity = cyclomatic.function_complexity(func, source)
        reports.append(
            MaintainabilityReport(
                name=f"{source.path}:{func.name}",
                raw_mi=_raw_mi(volume, complexity, func.length),
                comment_bonus=0.0,
            )
        )
    return reports


def report_from_aggregates(
    name: str,
    volume: float,
    complexity: float,
    code_lines: float,
    comment_ratio: float,
) -> MaintainabilityReport:
    """Build an MI report from already-aggregated inputs.

    The incremental-extraction merge phase computes Halstead volume,
    cyclomatic complexity, and line counts from summed per-file records;
    feeding them through the same formulas here yields the exact floats
    :func:`measure_codebase` would have produced on the full tree.
    """
    return MaintainabilityReport(
        name=name,
        raw_mi=_raw_mi(volume, complexity, code_lines),
        comment_bonus=_comment_bonus(comment_ratio),
    )


def measure_codebase(codebase: Codebase) -> MaintainabilityReport:
    """MI over a whole codebase (aggregated inputs, single formula)."""
    counts = loc.count_codebase(codebase)
    volume = halstead.measure_codebase(codebase).volume
    complexity = cyclomatic.codebase_complexity(codebase)
    return MaintainabilityReport(
        name=codebase.name,
        raw_mi=_raw_mi(volume, complexity, counts.code),
        comment_bonus=_comment_bonus(counts.comment_ratio),
    )


def worst_functions(codebase: Codebase, k: int = 10) -> List[MaintainabilityReport]:
    """The k least-maintainable functions across a codebase."""
    reports: List[MaintainabilityReport] = []
    for source in codebase:
        reports.extend(measure_functions(source))
    reports.sort(key=lambda r: r.mi)
    return reports[:k]
