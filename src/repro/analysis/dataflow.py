"""Data-flow analysis [56].

Classic iterative reaching-definitions over the recovered CFG, a def-use
chain count, and a lightweight taint propagation from attacker-influenced
sources (function parameters, input routines) to dangerous sinks. The paper
proposes data-flow counts — "numbers of expressions or functions
influencing the execution of other parts of the code" (§4.1) — as model
features; taint flow counts double as an attack-surface-adjacent signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.lang.parser import FunctionInfo, extract_functions
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import Token, TokenKind

_ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ":="}
)

#: Functions whose return value or out-parameter is attacker-influenced.
TAINT_SOURCES = frozenset(
    {"read", "recv", "recvfrom", "fread", "fgets", "gets", "scanf", "fscanf",
     "getenv", "getchar", "input", "raw_input", "readline", "readLine",
     "nextLine", "getParameter", "args", "argv"}
)

#: Functions where attacker-influenced data is dangerous.
TAINT_SINKS = frozenset(
    {"strcpy", "strcat", "sprintf", "vsprintf", "system", "popen", "exec",
     "execl", "execlp", "execv", "execvp", "eval", "memcpy", "alloca",
     "printf", "fprintf", "syslog", "Runtime", "query", "os"}
)


def _node_defs_uses(tokens: List[Token]) -> Tuple[Set[str], Set[str], Set[str]]:
    """(defined vars, used vars, called functions) for one statement."""
    defs: Set[str] = set()
    uses: Set[str] = set()
    calls: Set[str] = set()
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.IDENT:
            continue
        nxt = tokens[i + 1] if i + 1 < n else None
        if nxt is not None and nxt.text == "(":
            calls.add(tok.text)
            continue
        if (
            nxt is not None
            and nxt.kind == TokenKind.OPERATOR
            and nxt.text in _ASSIGN_OPS
        ):
            defs.add(tok.text)
            if nxt.text != "=":  # compound assignment also reads
                uses.add(tok.text)
            continue
        if nxt is not None and nxt.text in ("++", "--"):
            defs.add(tok.text)
            uses.add(tok.text)
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None and prev.text in ("++", "--"):
            defs.add(tok.text)
        uses.add(tok.text)
    return defs, uses, calls


def _stmt_tokens(cfg: CFG, node: int) -> List[Token]:
    stmt = cfg.graph.nodes[node].get("stmt")
    return stmt.tokens if stmt is not None else []


#: Per-node (defs, uses, calls) for a whole CFG.
NodeFlowInfo = Dict[int, Tuple[Set[str], Set[str], Set[str]]]


def node_flow_info(cfg: CFG) -> NodeFlowInfo:
    """(defs, uses, calls) for every CFG node, computed in one pass.

    Both :func:`reaching_definitions` and :func:`taint_analysis` need this
    table; callers running both on the same CFG should compute it once and
    pass it to each. Statement-less nodes (entry/exit/joins) all share
    one empty triple — every consumer treats the sets as read-only.
    """
    node_attrs = cfg.graph._node
    empty: Tuple[Set[str], Set[str], Set[str]] = (set(), set(), set())
    info: NodeFlowInfo = {}
    for node, attrs in node_attrs.items():
        stmt = attrs.get("stmt")
        if stmt is not None and stmt.tokens:
            info[node] = _node_defs_uses(stmt.tokens)
        else:
            info[node] = empty
    return info


@dataclass(frozen=True)
class ReachingDefinitions:
    """Result of the reaching-definitions fixpoint for one function."""

    #: IN set per CFG node: frozenset of (defining node, variable) pairs.
    in_sets: Dict[int, FrozenSet[Tuple[int, str]]]
    #: Definitions generated per node.
    gen: Dict[int, FrozenSet[Tuple[int, str]]]
    #: Variables used per node.
    uses: Dict[int, FrozenSet[str]]

    def def_use_pairs(self) -> int:
        """Number of (definition, use-site) pairs where the def reaches."""
        pairs = 0
        for node, used in self.uses.items():
            reaching = self.in_sets.get(node, frozenset())
            pairs += sum(1 for (_, var) in reaching if var in used)
        return pairs

    def max_reaching(self) -> int:
        """Largest IN set across nodes — a flow-density signal."""
        return max((len(s) for s in self.in_sets.values()), default=0)


def _rd_fixpoint(
    cfg: CFG, node_info: NodeFlowInfo
) -> Tuple[
    Dict[int, Set[Tuple[int, str]]],
    Dict[int, Set[Tuple[int, str]]],
    Dict[int, Set[str]],
]:
    """The reaching-definitions worklist over raw (mutable) sets.

    Returns ``(in_sets, gen, uses)``; :func:`reaching_definitions`
    freezes them for its public dataclass while :func:`rd_metrics`
    reads them directly — the two therefore agree by construction.
    Sets are only ever rebound, never mutated in place, so aliasing a
    predecessor's OUT set as a single-pred node's IN set is safe.
    """
    graph = cfg.graph
    nodes = list(graph.nodes)
    gen: Dict[int, Set[Tuple[int, str]]] = {}
    kill_vars: Dict[int, Set[str]] = {}
    uses: Dict[int, Set[str]] = {}
    # Most CFG nodes define nothing; they can all share one (never
    # mutated) empty gen set, and the kill set can alias the node's
    # defs set directly — it is only read.
    empty_gen: Set[Tuple[int, str]] = set()
    for node in nodes:
        defs, used, _calls = node_info[node]
        gen[node] = {(node, v) for v in defs} if defs else empty_gen
        kill_vars[node] = defs
        uses[node] = used

    # Adjacency resolved once: the worklist revisits nodes many times,
    # and networkx predecessor/successor views are dict lookups per call.
    # One edge sweep builds both directions (set-valued fixpoints make
    # neighbour order irrelevant).
    preds: Dict[int, List[int]] = {n: [] for n in nodes}
    succs: Dict[int, List[int]] = {n: [] for n in nodes}
    for u, v in graph.edges():
        succs[u].append(v)
        preds[v].append(u)
    in_sets: Dict[int, Set[Tuple[int, str]]] = {n: set() for n in nodes}
    out_sets: Dict[int, Set[Tuple[int, str]]] = {n: set() for n in nodes}
    # Reversed so pop() (LIFO) visits nodes in insertion order — roughly
    # entry-to-exit for CFG builders — which propagates facts forward and
    # converges in fewer sweeps. The fixpoint itself is order-independent.
    worklist = list(reversed(nodes))
    while worklist:
        node = worklist.pop()
        ps = preds[node]
        if len(ps) == 1:
            # Single predecessor: its OUT set IS the meet. Aliasing is
            # safe because no set is ever mutated after being stored.
            new_in = out_sets[ps[0]]
        else:
            new_in = set()
            for pred in ps:
                new_in |= out_sets[pred]
        killed = kill_vars[node]
        if killed:
            new_out = {d for d in new_in if d[1] not in killed} | gen[node]
        else:
            # Nothing killed and (by construction) nothing generated:
            # the transfer function is the identity.
            new_out = new_in
        if new_in != in_sets[node] or new_out != out_sets[node]:
            in_sets[node] = new_in
            out_sets[node] = new_out
            worklist.extend(succs[node])
    return in_sets, gen, uses


def reaching_definitions(
    cfg: CFG, node_info: Optional[NodeFlowInfo] = None
) -> ReachingDefinitions:
    """Run the standard worklist reaching-definitions analysis on ``cfg``."""
    if node_info is None:
        node_info = node_flow_info(cfg)
    in_sets, gen, uses = _rd_fixpoint(cfg, node_info)
    return ReachingDefinitions(
        in_sets={n: frozenset(s) for n, s in in_sets.items()},
        gen={n: frozenset(s) for n, s in gen.items()},
        uses={n: frozenset(s) for n, s in uses.items()},
    )


def rd_metrics(
    cfg: CFG, node_info: Optional[NodeFlowInfo] = None
) -> Tuple[int, int, int, int]:
    """(defs, uses, def-use pairs, max reaching) for one CFG.

    The numbers :class:`ReachingDefinitions` would yield via
    ``def_use_pairs``/``max_reaching`` and the gen/uses set sizes,
    computed from the raw fixpoint sets without freezing ~every node's
    sets into throwaway frozensets — the extraction hot path calls this
    per function, so the materialisation cost is real.
    """
    if node_info is None:
        node_info = node_flow_info(cfg)
    in_sets, gen, uses = _rd_fixpoint(cfg, node_info)
    n_defs = sum(len(g) for g in gen.values())
    n_uses = sum(len(u) for u in uses.values())
    pairs = 0
    max_reach = 0
    for node, reaching in in_sets.items():
        size = len(reaching)
        if size > max_reach:
            max_reach = size
        if size:
            used = uses[node]
            if used:
                pairs += sum(1 for (_, var) in reaching if var in used)
    return n_defs, n_uses, pairs, max_reach


@dataclass(frozen=True)
class TaintResult:
    """Taint propagation result for one function."""

    tainted_vars: FrozenSet[str]
    tainted_sink_calls: int
    source_sites: int
    sink_sites: int


def taint_analysis(
    cfg: CFG, params: List[str], node_info: Optional[NodeFlowInfo] = None
) -> TaintResult:
    """Propagate taint from parameters/input calls to dangerous sinks.

    A statement taints the variables it defines when its right-hand side
    mentions a tainted variable or calls a known source. A sink call whose
    statement mentions any tainted variable counts as a tainted flow.
    """
    if node_info is None:
        node_info = node_flow_info(cfg)
    # ``isdisjoint`` tests overlap without building the intersection
    # sets ``&`` would allocate per node.
    source_sites = sum(
        1 for _, (_, _, calls) in node_info.items()
        if not calls.isdisjoint(TAINT_SOURCES)
    )
    sink_sites = sum(
        1 for _, (_, _, calls) in node_info.items()
        if not calls.isdisjoint(TAINT_SINKS)
    )

    graph = cfg.graph
    nodes = list(graph.nodes)
    preds: Dict[int, List[int]] = {n: [] for n in nodes}
    succs: Dict[int, List[int]] = {n: [] for n in nodes}
    for u, v in graph.edges():
        succs[u].append(v)
        preds[v].append(u)
    in_taint: Dict[int, Set[str]] = {n: set() for n in nodes}
    out_taint: Dict[int, Set[str]] = {n: set() for n in nodes}
    seed = set(params)
    out_taint[cfg.entry] = set(seed)

    worklist = list(reversed(nodes))
    entry = cfg.entry
    while worklist:
        node = worklist.pop()
        ps = preds[node]
        if node != entry and len(ps) == 1:
            # Single predecessor, no seed to fold in: the meet is the
            # predecessor's OUT set. Aliasing is safe — sets are only
            # rebound below, never mutated in place.
            new_in = out_taint[ps[0]]
        else:
            new_in = set(seed) if node == entry else set()
            for pred in ps:
                new_in |= out_taint[pred]
        defs, used, calls = node_info[node]
        if not defs:
            # Defines nothing: both branches reduce to the identity.
            new_out = new_in
        elif ((not used.isdisjoint(new_in) and (used - defs) & new_in)
                or not calls.isdisjoint(TAINT_SOURCES)):
            new_out = new_in | defs
        else:
            # A plain reassignment from untainted data clears the variable.
            new_out = new_in - defs
        if new_in != in_taint[node] or new_out != out_taint[node]:
            in_taint[node] = new_in
            out_taint[node] = new_out
            worklist.extend(succs[node])

    tainted: Set[str] = set(seed)
    tainted_sinks = 0
    for node, (defs, used, calls) in node_info.items():
        reach = in_taint[node]
        if node == entry and seed:
            reach = reach | seed
        used_reach = not used.isdisjoint(reach)
        if used_reach or not calls.isdisjoint(TAINT_SOURCES):
            tainted |= defs
        if used_reach and not calls.isdisjoint(TAINT_SINKS):
            tainted_sinks += 1
    return TaintResult(
        tainted_vars=frozenset(tainted),
        tainted_sink_calls=tainted_sinks,
        source_sites=source_sites,
        sink_sites=sink_sites,
    )


@dataclass(frozen=True)
class DataflowMetrics:
    """Codebase-level data-flow feature summary."""

    n_defs: int
    n_uses: int
    def_use_pairs: int
    max_reaching: int
    source_sites: int
    sink_sites: int
    tainted_sink_calls: int


def measure_codebase(codebase: Codebase) -> DataflowMetrics:
    """Aggregate data-flow metrics across every function in ``codebase``."""
    n_defs = n_uses = pairs = max_reach = 0
    sources = sinks = tainted = 0
    for source in codebase:
        for func in extract_functions(source):
            cfg = build_cfg(func, source)
            info = node_flow_info(cfg)
            defs, used, du_pairs, reach = rd_metrics(cfg, info)
            n_defs += defs
            n_uses += used
            pairs += du_pairs
            max_reach = max(max_reach, reach)
            taint = taint_analysis(cfg, func.param_names, info)
            sources += taint.source_sites
            sinks += taint.sink_sites
            tainted += taint.tainted_sink_calls
    return DataflowMetrics(
        n_defs=n_defs,
        n_uses=n_uses,
        def_use_pairs=pairs,
        max_reaching=max_reach,
        source_sites=sources,
        sink_sites=sinks,
        tainted_sink_calls=tainted,
    )
