"""Data-flow analysis [56].

Classic iterative reaching-definitions over the recovered CFG, a def-use
chain count, and a lightweight taint propagation from attacker-influenced
sources (function parameters, input routines) to dangerous sinks. The paper
proposes data-flow counts — "numbers of expressions or functions
influencing the execution of other parts of the code" (§4.1) — as model
features; taint flow counts double as an attack-surface-adjacent signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.lang.parser import FunctionInfo, extract_functions
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import Token, TokenKind

_ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ":="}
)

#: Functions whose return value or out-parameter is attacker-influenced.
TAINT_SOURCES = frozenset(
    {"read", "recv", "recvfrom", "fread", "fgets", "gets", "scanf", "fscanf",
     "getenv", "getchar", "input", "raw_input", "readline", "readLine",
     "nextLine", "getParameter", "args", "argv"}
)

#: Functions where attacker-influenced data is dangerous.
TAINT_SINKS = frozenset(
    {"strcpy", "strcat", "sprintf", "vsprintf", "system", "popen", "exec",
     "execl", "execlp", "execv", "execvp", "eval", "memcpy", "alloca",
     "printf", "fprintf", "syslog", "Runtime", "query", "os"}
)


def _node_defs_uses(tokens: List[Token]) -> Tuple[Set[str], Set[str], Set[str]]:
    """(defined vars, used vars, called functions) for one statement."""
    defs: Set[str] = set()
    uses: Set[str] = set()
    calls: Set[str] = set()
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.IDENT:
            continue
        nxt = tokens[i + 1] if i + 1 < n else None
        if nxt is not None and nxt.text == "(":
            calls.add(tok.text)
            continue
        if (
            nxt is not None
            and nxt.kind == TokenKind.OPERATOR
            and nxt.text in _ASSIGN_OPS
        ):
            defs.add(tok.text)
            if nxt.text != "=":  # compound assignment also reads
                uses.add(tok.text)
            continue
        if nxt is not None and nxt.text in ("++", "--"):
            defs.add(tok.text)
            uses.add(tok.text)
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None and prev.text in ("++", "--"):
            defs.add(tok.text)
        uses.add(tok.text)
    return defs, uses, calls


def _stmt_tokens(cfg: CFG, node: int) -> List[Token]:
    stmt = cfg.graph.nodes[node].get("stmt")
    return stmt.tokens if stmt is not None else []


@dataclass(frozen=True)
class ReachingDefinitions:
    """Result of the reaching-definitions fixpoint for one function."""

    #: IN set per CFG node: frozenset of (defining node, variable) pairs.
    in_sets: Dict[int, FrozenSet[Tuple[int, str]]]
    #: Definitions generated per node.
    gen: Dict[int, FrozenSet[Tuple[int, str]]]
    #: Variables used per node.
    uses: Dict[int, FrozenSet[str]]

    def def_use_pairs(self) -> int:
        """Number of (definition, use-site) pairs where the def reaches."""
        pairs = 0
        for node, used in self.uses.items():
            reaching = self.in_sets.get(node, frozenset())
            pairs += sum(1 for (_, var) in reaching if var in used)
        return pairs

    def max_reaching(self) -> int:
        """Largest IN set across nodes — a flow-density signal."""
        return max((len(s) for s in self.in_sets.values()), default=0)


def reaching_definitions(cfg: CFG) -> ReachingDefinitions:
    """Run the standard worklist reaching-definitions analysis on ``cfg``."""
    gen: Dict[int, Set[Tuple[int, str]]] = {}
    kill_vars: Dict[int, Set[str]] = {}
    uses: Dict[int, Set[str]] = {}
    for node in cfg.graph.nodes:
        defs, used, _calls = _node_defs_uses(_stmt_tokens(cfg, node))
        gen[node] = {(node, v) for v in defs}
        kill_vars[node] = set(defs)
        uses[node] = used

    in_sets: Dict[int, Set[Tuple[int, str]]] = {n: set() for n in cfg.graph.nodes}
    out_sets: Dict[int, Set[Tuple[int, str]]] = {n: set() for n in cfg.graph.nodes}
    worklist = list(cfg.graph.nodes)
    while worklist:
        node = worklist.pop()
        new_in: Set[Tuple[int, str]] = set()
        for pred in cfg.graph.predecessors(node):
            new_in |= out_sets[pred]
        killed = kill_vars[node]
        new_out = {d for d in new_in if d[1] not in killed} | gen[node]
        if new_in != in_sets[node] or new_out != out_sets[node]:
            in_sets[node] = new_in
            out_sets[node] = new_out
            worklist.extend(cfg.graph.successors(node))
    return ReachingDefinitions(
        in_sets={n: frozenset(s) for n, s in in_sets.items()},
        gen={n: frozenset(s) for n, s in gen.items()},
        uses={n: frozenset(s) for n, s in uses.items()},
    )


@dataclass(frozen=True)
class TaintResult:
    """Taint propagation result for one function."""

    tainted_vars: FrozenSet[str]
    tainted_sink_calls: int
    source_sites: int
    sink_sites: int


def taint_analysis(cfg: CFG, params: List[str]) -> TaintResult:
    """Propagate taint from parameters/input calls to dangerous sinks.

    A statement taints the variables it defines when its right-hand side
    mentions a tainted variable or calls a known source. A sink call whose
    statement mentions any tainted variable counts as a tainted flow.
    """
    node_info = {
        node: _node_defs_uses(_stmt_tokens(cfg, node)) for node in cfg.graph.nodes
    }
    source_sites = sum(
        1 for _, (_, _, calls) in node_info.items() if calls & TAINT_SOURCES
    )
    sink_sites = sum(
        1 for _, (_, _, calls) in node_info.items() if calls & TAINT_SINKS
    )

    in_taint: Dict[int, Set[str]] = {n: set() for n in cfg.graph.nodes}
    out_taint: Dict[int, Set[str]] = {n: set() for n in cfg.graph.nodes}
    seed = set(params)
    out_taint[cfg.entry] = set(seed)

    worklist = list(cfg.graph.nodes)
    while worklist:
        node = worklist.pop()
        new_in: Set[str] = set(seed) if node == cfg.entry else set()
        for pred in cfg.graph.predecessors(node):
            new_in |= out_taint[pred]
        defs, used, calls = node_info[node]
        rhs_tainted = bool((used - defs) & new_in) or bool(calls & TAINT_SOURCES)
        if rhs_tainted:
            new_out = new_in | defs
        else:
            # A plain reassignment from untainted data clears the variable.
            new_out = new_in - defs
        if new_in != in_taint[node] or new_out != out_taint[node]:
            in_taint[node] = new_in
            out_taint[node] = new_out
            worklist.extend(cfg.graph.successors(node))

    tainted: Set[str] = set(seed)
    tainted_sinks = 0
    for node, (defs, used, calls) in node_info.items():
        reach = in_taint[node] | (seed if node == cfg.entry else set())
        if (used & reach) or (calls & TAINT_SOURCES):
            tainted |= defs
        if calls & TAINT_SINKS and (used & reach):
            tainted_sinks += 1
    return TaintResult(
        tainted_vars=frozenset(tainted),
        tainted_sink_calls=tainted_sinks,
        source_sites=source_sites,
        sink_sites=sink_sites,
    )


@dataclass(frozen=True)
class DataflowMetrics:
    """Codebase-level data-flow feature summary."""

    n_defs: int
    n_uses: int
    def_use_pairs: int
    max_reaching: int
    source_sites: int
    sink_sites: int
    tainted_sink_calls: int


def measure_codebase(codebase: Codebase) -> DataflowMetrics:
    """Aggregate data-flow metrics across every function in ``codebase``."""
    n_defs = n_uses = pairs = max_reach = 0
    sources = sinks = tainted = 0
    for source in codebase:
        for func in extract_functions(source):
            cfg = build_cfg(func, source)
            rd = reaching_definitions(cfg)
            n_defs += sum(len(g) for g in rd.gen.values())
            n_uses += sum(len(u) for u in rd.uses.values())
            pairs += rd.def_use_pairs()
            max_reach = max(max_reach, rd.max_reaching())
            taint = taint_analysis(cfg, func.param_names)
            sources += taint.source_sites
            sinks += taint.sink_sites
            tainted += taint.tainted_sink_calls
    return DataflowMetrics(
        n_defs=n_defs,
        n_uses=n_uses,
        def_use_pairs=pairs,
        max_reaching=max_reach,
        source_sites=sources,
        sink_sites=sinks,
        tainted_sink_calls=tainted,
    )
