"""Control-flow analysis [15].

Recovers a statement tree from a function body (brace matching for
C/C++/Java, indentation for Python), then lowers it to a control-flow
graph of basic blocks. The CFG yields the control-flow features the paper
proposes in §4.1 — numbers of calling/returning targets, branch and edge
counts — plus an independent cyclomatic number (E - N + 2) that
cross-checks the token-counting McCabe implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.lang.parser import FunctionInfo, extract_functions
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import Token, TokenKind

# ---------------------------------------------------------------------------
# Statement tree
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """A node of the recovered statement tree."""

    kind: str  # simple|if|loop|switch|return|break|continue|goto|label|try
    tokens: List[Token] = field(default_factory=list)  # header/expression toks
    body: List["Stmt"] = field(default_factory=list)
    orelse: List["Stmt"] = field(default_factory=list)
    cases: List[List["Stmt"]] = field(default_factory=list)  # switch/try arms


_LOOP_KEYWORDS = {"while", "for", "do"}


class _BraceStmtParser:
    """Parses the statement shape of a brace-language token stream."""

    def __init__(self, tokens: Sequence[Token]):
        # Callers pass parser-produced body tokens, which are already
        # code-filtered (see ``extract_functions``).
        self.tokens = tokens
        self.i = 0

    def parse(self) -> List[Stmt]:
        stmts, _ = self._parse_until({None})
        return stmts

    # -- helpers ----------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _advance(self) -> Optional[Token]:
        tok = self._peek()
        if tok is not None:
            self.i += 1
        return tok

    def _skip_parens(self) -> List[Token]:
        """Consume a balanced ``( ... )`` group; return the inner tokens."""
        toks = self.tokens
        n = len(toks)
        i = self.i
        if i >= n or toks[i].text != "(":
            return []
        inner: List[Token] = []
        append = inner.append
        depth = 1
        i += 1
        while i < n:
            tok = toks[i]
            i += 1
            text = tok.text
            if text == "(":
                depth += 1
            elif text == ")":
                depth -= 1
                if depth == 0:
                    break
            append(tok)
        self.i = i
        return inner

    def _parse_until(self, terminators) -> Tuple[List[Stmt], Optional[str]]:
        """Parse statements until EOF or a terminator token text."""
        stmts: List[Stmt] = []
        toks = self.tokens
        n = len(toks)
        while self.i < n:
            text = toks[self.i].text
            if text in terminators:
                return stmts, text
            stmt = self._parse_statement()
            if stmt is not None:
                stmts.append(stmt)
        return stmts, None

    def _parse_block_or_statement(self) -> List[Stmt]:
        tok = self._peek()
        if tok is not None and tok.text == "{":
            self._advance()
            stmts, term = self._parse_until({"}"})
            if term == "}":
                self._advance()
            return stmts
        stmt = self._parse_statement()
        return [stmt] if stmt is not None else []

    def _parse_statement(self) -> Optional[Stmt]:
        tok = self._peek()
        if tok is None:
            return None
        text = tok.text

        if text == ";":
            self._advance()
            return None
        if text == "{":
            self._advance()
            stmts, term = self._parse_until({"}"})
            if term == "}":
                self._advance()
            return Stmt("simple", body=stmts) if stmts else None
        if text == "}":
            # Unbalanced close: consume so parsing always terminates.
            self._advance()
            return None

        if tok.kind == TokenKind.KEYWORD:
            if text == "if":
                return self._parse_if()
            if text in ("while", "for"):
                self._advance()
                cond = self._skip_parens()
                body = self._parse_block_or_statement()
                return Stmt("loop", tokens=cond, body=body)
            if text == "do":
                self._advance()
                body = self._parse_block_or_statement()
                cond: List[Token] = []
                if self._peek() is not None and self._peek().text == "while":
                    self._advance()
                    cond = self._skip_parens()
                    self._consume_semicolon()
                return Stmt("loop", tokens=cond, body=body)
            if text == "switch":
                return self._parse_switch()
            if text == "try":
                return self._parse_try()
            if text in ("return", "throw"):
                self._advance()
                expr = self._consume_simple()
                return Stmt("return", tokens=expr)
            if text in ("break", "continue"):
                self._advance()
                self._consume_semicolon()
                return Stmt(text)
            if text == "goto":
                self._advance()
                target = self._consume_simple()
                return Stmt("goto", tokens=target)
            if text == "else":
                # Dangling else (shouldn't happen); treat as a block.
                self._advance()
                return Stmt("simple", body=self._parse_block_or_statement())

        # Label: IDENT ':' not inside an expression.
        if (
            tok.kind == TokenKind.IDENT
            and self.i + 1 < len(self.tokens)
            and self.tokens[self.i + 1].text == ":"
        ):
            self._advance()
            self._advance()
            return Stmt("label", tokens=[tok])

        return Stmt("simple", tokens=self._consume_simple(leading=True))

    def _parse_if(self) -> Stmt:
        self._advance()  # if
        cond = self._skip_parens()
        then = self._parse_block_or_statement()
        orelse: List[Stmt] = []
        nxt = self._peek()
        if nxt is not None and nxt.text == "else":
            self._advance()
            orelse = self._parse_block_or_statement()
        return Stmt("if", tokens=cond, body=then, orelse=orelse)

    def _parse_switch(self) -> Stmt:
        self._advance()  # switch
        cond = self._skip_parens()
        cases: List[List[Stmt]] = []
        tok = self._peek()
        if tok is None or tok.text != "{":
            return Stmt("switch", tokens=cond, cases=cases)
        self._advance()
        current: Optional[List[Stmt]] = None
        while True:
            tok = self._peek()
            if tok is None:
                break
            if tok.text == "}":
                self._advance()
                break
            if tok.kind == TokenKind.KEYWORD and tok.text in ("case", "default"):
                self._advance()
                while self._peek() is not None and self._peek().text != ":":
                    self._advance()
                if self._peek() is not None:
                    self._advance()  # ':'
                current = []
                cases.append(current)
                continue
            stmt = self._parse_statement()
            if stmt is not None:
                if current is None:
                    current = []
                    cases.append(current)
                current.append(stmt)
        return Stmt("switch", tokens=cond, cases=cases)

    def _parse_try(self) -> Stmt:
        self._advance()  # try
        body = self._parse_block_or_statement()
        cases: List[List[Stmt]] = []
        while True:
            tok = self._peek()
            if tok is None or tok.text not in ("catch", "finally"):
                break
            self._advance()
            if tok.text == "catch":
                self._skip_parens()
            cases.append(self._parse_block_or_statement())
        return Stmt("try", body=body, cases=cases)

    def _consume_semicolon(self) -> None:
        tok = self._peek()
        if tok is not None and tok.text == ";":
            self._advance()

    def _consume_simple(self, leading: bool = False) -> List[Token]:
        """Consume an expression up to ``;`` (or a block boundary)."""
        toks = self.tokens
        n = len(toks)
        i = self.i
        out: List[Token] = []
        append = out.append
        depth = 0
        while i < n:
            tok = toks[i]
            text = tok.text
            if text in "([":
                depth += 1
            elif text in ")]":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0:
                if text == ";":
                    i += 1
                    break
                if text == "{" or text == "}":
                    break
            append(tok)
            i += 1
        self.i = i
        return out


# ---------------------------------------------------------------------------
# Python statement tree (indentation-based)
# ---------------------------------------------------------------------------

_PY_HEADERS = {"if", "elif", "else", "while", "for", "try", "except",
               "finally", "with", "def", "class", "match", "case"}


def _py_parse_lines(
    source: SourceFile,
    start: int,
    end: int,
    tokens_by_line: Optional[dict] = None,
) -> List[Stmt]:
    """Parse lines [start, end] (1-based, inclusive) into a statement tree.

    ``tokens_by_line`` maps line number -> code tokens on that line; when a
    caller analyses every function in a file (the analysis artifact) it is
    computed once per file instead of once per function.
    """
    lines = source.lines
    if tokens_by_line is None:
        tokens_by_line = code_tokens_by_line(source.tokens)

    def indent_of(ln: int) -> int:
        line = lines[ln - 1]
        width = 0
        for ch in line:
            if ch == " ":
                width += 1
            elif ch == "\t":
                width += 8 - width % 8
            else:
                break
        return width

    def is_code_line(ln: int) -> bool:
        return ln in tokens_by_line

    def block_end(header: int, base_indent: int) -> int:
        last = header
        ln = header + 1
        while ln <= end:
            if is_code_line(ln):
                if indent_of(ln) <= base_indent:
                    break
                last = ln
            ln += 1
        return last

    def parse_range(lo: int, hi: int) -> List[Stmt]:
        stmts: List[Stmt] = []
        ln = lo
        while ln <= hi:
            if not is_code_line(ln):
                ln += 1
                continue
            toks = tokens_by_line[ln]
            head = toks[0]
            word = head.text if head.kind == TokenKind.KEYWORD else None
            indent = indent_of(ln)
            if word in ("if", "while", "for", "with", "try", "match"):
                body_end = block_end(ln, indent)
                body = parse_range(ln + 1, body_end)
                kind = {"if": "if", "while": "loop", "for": "loop",
                        "with": "simple", "try": "try", "match": "switch"}[word]
                root = Stmt(kind, tokens=toks, body=body)
                tail = root
                ln = body_end + 1
                while ln <= hi and is_code_line(ln) and indent_of(ln) == indent:
                    nxt = tokens_by_line[ln][0]
                    nword = nxt.text if nxt.kind == TokenKind.KEYWORD else None
                    if nword not in ("elif", "else", "except", "finally", "case"):
                        break
                    arm_end = block_end(ln, indent)
                    arm = parse_range(ln + 1, arm_end)
                    if nword == "elif":
                        nested = Stmt("if", tokens=tokens_by_line[ln], body=arm)
                        tail.orelse = [nested]
                        tail = nested
                    elif nword == "else":
                        tail.orelse = arm
                    else:
                        tail.cases.append(arm)
                    ln = arm_end + 1
                stmts.append(root)
                continue
            if word in ("return", "raise"):
                stmts.append(Stmt("return", tokens=toks))
            elif word == "break":
                stmts.append(Stmt("break"))
            elif word == "continue":
                stmts.append(Stmt("continue"))
            elif word in ("def", "class"):
                body_end = block_end(ln, indent)
                stmts.append(Stmt("simple", tokens=toks))
                ln = body_end + 1
                continue
            else:
                stmts.append(Stmt("simple", tokens=toks))
            ln += 1
        return stmts

    return parse_range(start, end)


def code_tokens_by_line(tokens: Sequence[Token]) -> dict:
    """Group code tokens by their (1-based) line number."""
    by_line: dict = {}
    for tok in tokens:
        if tok.is_code():
            by_line.setdefault(tok.line, []).append(tok)
    return by_line


def parse_statements(
    func: FunctionInfo,
    source: SourceFile,
    tokens_by_line: Optional[dict] = None,
) -> List[Stmt]:
    """Recover the statement tree for one function."""
    if source.spec.function_style == "indent":
        return _py_parse_lines(
            source, func.start_line + 1, func.end_line, tokens_by_line
        )
    body = func.body_tokens
    # ``body_tokens`` come from the parser already code-filtered; strip
    # the enclosing braces if present.
    if body and body[0].text == "{" and body[-1].text == "}":
        body = body[1:-1]
    return _BraceStmtParser(body).parse()


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CFG:
    """A function's control-flow graph plus derived metrics."""

    graph: nx.DiGraph
    entry: int
    exit: int

    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges()

    @property
    def cyclomatic(self) -> int:
        """Cyclomatic number from graph shape: E - N + 2."""
        return self.n_edges - self.n_nodes + 2

    @property
    def n_branch_nodes(self) -> int:
        return sum(1 for n in self.graph if self.graph.out_degree(n) > 1)

    def path_count(self, cap: int = 10**9) -> int:
        """Number of acyclic entry→exit paths (NPATH-like), capped.

        Back edges are removed first, so loops contribute their fall-through
        structure only; the count is exact on the resulting DAG. Nodes
        unreachable from entry cannot lie on an entry→exit path, so the
        walk covers reachable nodes only.
        """
        order, succs = self._dag
        counts = {self.entry: 1}
        for node in order:
            c = counts.get(node, 0)
            if c == 0 and node != self.entry:
                continue
            for succ in succs[node]:
                counts[succ] = min(cap, counts.get(succ, 0) + c)
        return counts.get(self.exit, 0)

    def max_depth(self) -> int:
        """Longest acyclic path length from entry (statement depth proxy)."""
        order, succs = self._dag
        depth = {self.entry: 0}
        for node in order:
            if node not in depth:
                continue
            for succ in succs[node]:
                depth[succ] = max(depth.get(succ, 0), depth[node] + 1)
        return max(depth.values(), default=0)

    @cached_property
    def _dag(self):
        """Shared back-edge-free DAG: both path metrics walk the same one.

        ``cached_property`` stores into ``__dict__`` directly, which the
        frozen dataclass permits; the graph is never mutated after build,
        so the cache cannot go stale.
        """
        return _acyclic_dag(self.graph, self.entry)


def _acyclic_dag(graph: nx.DiGraph, entry: int):
    """Back-edge-free reachable DAG of ``graph``, as plain containers.

    Returns ``(order, succs)`` where ``order`` is a topological order
    (DFS reverse postorder) of the nodes reachable from ``entry`` and
    ``succs`` maps each of them to its non-back successors. One DFS
    classifies back edges (targets on the active DFS stack) and produces
    the ordering; no graph copy or networkx traversal is needed.
    """
    # State: 0 unvisited, 1 on the active DFS path, 2 finished.
    state: dict = {entry: 1}
    succs: dict = {}
    postorder: list = []
    # Raw successor dicts: ``graph.successors`` re-resolves the adjacency
    # mapping per call, and this DFS touches it once per node.
    adj = graph._succ
    stack = [(entry, iter(adj[entry]))]
    while stack:
        node, it = stack[-1]
        advanced = False
        keep = succs.setdefault(node, [])
        for succ in it:
            s = state.get(succ, 0)
            if s == 1:
                continue  # back edge: drop it from the DAG
            keep.append(succ)
            if s == 0:
                state[succ] = 1
                stack.append((succ, iter(adj[succ])))
                advanced = True
                break
        if not advanced:
            state[node] = 2
            postorder.append(node)
            stack.pop()
    postorder.reverse()
    return postorder, succs


class _CFGBuilder:
    """Lowers a statement tree to a CFG of abstract nodes."""

    def __init__(self) -> None:
        # Nodes and edges are buffered and inserted into the DiGraph in
        # one batch at the end of ``build`` — networkx pays real per-call
        # cost in ``add_node``/``add_edge``, and the lowering never needs
        # to query the graph while it grows. Append order matches the
        # old call order exactly, so adjacency iteration order (which the
        # back-edge DFS in ``_acyclic_dag`` depends on) is unchanged.
        self._nodes: List[Tuple[int, dict]] = []
        self._edges: List[Tuple[int, int]] = []
        self._ids = itertools.count()
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self._labels: dict = {}
        self._pending_gotos: List[Tuple[int, str]] = []

    def _new(self, kind: str, stmt: Optional[Stmt] = None) -> int:
        node = next(self._ids)
        self._nodes.append((node, {"kind": kind, "stmt": stmt}))
        return node

    def build(self, stmts: List[Stmt]) -> CFG:
        tails = self._lower_seq(stmts, [self.entry], None, None)
        edges = self._edges
        for tail in tails:
            edges.append((tail, self.exit))
        for node, label in self._pending_gotos:
            edges.append((node, self._labels.get(label, self.exit)))
        entry = self.entry
        if not any(u == entry for u, _ in edges):
            edges.append((entry, self.exit))
        graph = nx.DiGraph()
        graph.add_nodes_from(self._nodes)
        graph.add_edges_from(edges)
        return CFG(graph, entry, self.exit)

    def _connect(self, preds: List[int], node: int) -> None:
        edges = self._edges
        for p in preds:
            edges.append((p, node))

    def _lower_seq(
        self,
        stmts: List[Stmt],
        preds: List[int],
        break_to: Optional[int],
        continue_to: Optional[int],
    ) -> List[int]:
        """Lower a statement list; return the open fall-through nodes."""
        current = preds
        for stmt in stmts:
            if not current:
                current = []  # unreachable code still lowered, dangling
            current = self._lower_stmt(stmt, current, break_to, continue_to)
        return current

    def _lower_stmt(
        self,
        stmt: Stmt,
        preds: List[int],
        break_to: Optional[int],
        continue_to: Optional[int],
    ) -> List[int]:
        kind = stmt.kind
        if kind == "simple":
            node = self._new("stmt", stmt)
            self._connect(preds, node)
            if stmt.body:  # brace block wrapped as simple
                return self._lower_seq(stmt.body, [node], break_to, continue_to)
            return [node]
        if kind == "if":
            cond = self._new("branch", stmt)
            self._connect(preds, cond)
            then_tails = self._lower_seq(stmt.body, [cond], break_to, continue_to)
            if stmt.orelse:
                else_tails = self._lower_seq(stmt.orelse, [cond], break_to, continue_to)
                return then_tails + else_tails
            return then_tails + [cond]
        if kind == "loop":
            head = self._new("loop", stmt)
            after = self._new("join")
            self._connect(preds, head)
            body_tails = self._lower_seq(stmt.body, [head], after, head)
            for tail in body_tails:
                self._edges.append((tail, head))
            self._edges.append((head, after))
            return [after]
        if kind == "switch":
            head = self._new("branch", stmt)
            after = self._new("join")
            self._connect(preds, head)
            arms = stmt.cases or [stmt.body]
            for arm in arms:
                tails = self._lower_seq(arm, [head], after, continue_to)
                for tail in tails:
                    self._edges.append((tail, after))
            self._edges.append((head, after))  # no-match / fallthrough
            return [after]
        if kind == "try":
            head = self._new("stmt", stmt)
            self._connect(preds, head)
            tails = self._lower_seq(stmt.body, [head], break_to, continue_to)
            all_tails = list(tails)
            for handler in stmt.cases:
                h_tails = self._lower_seq(handler, [head], break_to, continue_to)
                all_tails.extend(h_tails)
            return all_tails
        if kind == "return":
            node = self._new("return", stmt)
            self._connect(preds, node)
            self._edges.append((node, self.exit))
            return []
        if kind == "break":
            node = self._new("break", stmt)
            self._connect(preds, node)
            self._edges.append((node, break_to if break_to is not None else self.exit))
            return []
        if kind == "continue":
            node = self._new("continue", stmt)
            self._connect(preds, node)
            self._edges.append(
                (node, continue_to if continue_to is not None else self.exit)
            )
            return []
        if kind == "goto":
            node = self._new("goto", stmt)
            self._connect(preds, node)
            label = stmt.tokens[0].text if stmt.tokens else ""
            self._pending_gotos.append((node, label))
            return []
        if kind == "label":
            node = self._new("label", stmt)
            self._connect(preds, node)
            if stmt.tokens:
                self._labels[stmt.tokens[0].text] = node
            return [node]
        raise ValueError(f"unknown statement kind: {kind!r}")


def build_cfg(
    func: FunctionInfo,
    source: SourceFile,
    tokens_by_line: Optional[dict] = None,
) -> CFG:
    """Build the control-flow graph for one function.

    Node ids are assigned by a per-build counter, so building the same
    function twice yields structurally identical graphs — which is what
    lets one CFG be shared between the control-flow and data-flow
    analyzers without changing either's output.
    """
    return _CFGBuilder().build(parse_statements(func, source, tokens_by_line))


@dataclass(frozen=True)
class ControlFlowMetrics:
    """Codebase-level control-flow feature summary."""

    n_cfg_nodes: int
    n_cfg_edges: int
    n_branch_nodes: int
    n_return_nodes: int
    total_paths: int
    max_paths: int
    mean_cyclomatic: float


def measure_codebase(codebase: Codebase, path_cap: int = 10**6) -> ControlFlowMetrics:
    """Aggregate CFG metrics across every function in ``codebase``."""
    nodes = edges = branches = returns = 0
    total_paths = 0
    max_paths = 0
    cyclomatics: List[int] = []
    for source in codebase:
        for func in extract_functions(source):
            cfg = build_cfg(func, source)
            nodes += cfg.n_nodes
            edges += cfg.n_edges
            branches += cfg.n_branch_nodes
            returns += sum(
                1 for n, d in cfg.graph.nodes(data=True) if d["kind"] == "return"
            )
            paths = cfg.path_count(cap=path_cap)
            total_paths = min(path_cap, total_paths + paths)
            max_paths = max(max_paths, paths)
            cyclomatics.append(cfg.cyclomatic)
    mean_cc = sum(cyclomatics) / len(cyclomatics) if cyclomatics else 0.0
    return ControlFlowMetrics(
        n_cfg_nodes=nodes,
        n_cfg_edges=edges,
        n_branch_nodes=branches,
        n_return_nodes=returns,
        total_paths=total_paths,
        max_paths=max_paths,
        mean_cyclomatic=mean_cc,
    )
