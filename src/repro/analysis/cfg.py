"""Control-flow analysis [15].

Recovers a statement tree from a function body (brace matching for
C/C++/Java, indentation for Python), then lowers it to a control-flow
graph of basic blocks. The CFG yields the control-flow features the paper
proposes in §4.1 — numbers of calling/returning targets, branch and edge
counts — plus an independent cyclomatic number (E - N + 2) that
cross-checks the token-counting McCabe implementation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.lang.parser import FunctionInfo, extract_functions
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import Token, TokenKind

# ---------------------------------------------------------------------------
# Statement tree
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """A node of the recovered statement tree."""

    kind: str  # simple|if|loop|switch|return|break|continue|goto|label|try
    tokens: List[Token] = field(default_factory=list)  # header/expression toks
    body: List["Stmt"] = field(default_factory=list)
    orelse: List["Stmt"] = field(default_factory=list)
    cases: List[List["Stmt"]] = field(default_factory=list)  # switch/try arms


_LOOP_KEYWORDS = {"while", "for", "do"}


class _BraceStmtParser:
    """Parses the statement shape of a brace-language token stream."""

    def __init__(self, tokens: Sequence[Token]):
        self.tokens = [t for t in tokens if t.is_code()]
        self.i = 0

    def parse(self) -> List[Stmt]:
        stmts, _ = self._parse_until({None})
        return stmts

    # -- helpers ----------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _advance(self) -> Optional[Token]:
        tok = self._peek()
        if tok is not None:
            self.i += 1
        return tok

    def _skip_parens(self) -> List[Token]:
        """Consume a balanced ``( ... )`` group; return the inner tokens."""
        inner: List[Token] = []
        tok = self._peek()
        if tok is None or tok.text != "(":
            return inner
        depth = 0
        while self.i < len(self.tokens):
            tok = self.tokens[self.i]
            self.i += 1
            if tok.text == "(":
                depth += 1
                if depth == 1:
                    continue
            elif tok.text == ")":
                depth -= 1
                if depth == 0:
                    break
            inner.append(tok)
        return inner

    def _parse_until(self, terminators) -> Tuple[List[Stmt], Optional[str]]:
        """Parse statements until EOF or a terminator token text."""
        stmts: List[Stmt] = []
        while True:
            tok = self._peek()
            if tok is None:
                return stmts, None
            if tok.text in terminators:
                return stmts, tok.text
            stmt = self._parse_statement()
            if stmt is not None:
                stmts.append(stmt)
        # unreachable

    def _parse_block_or_statement(self) -> List[Stmt]:
        tok = self._peek()
        if tok is not None and tok.text == "{":
            self._advance()
            stmts, term = self._parse_until({"}"})
            if term == "}":
                self._advance()
            return stmts
        stmt = self._parse_statement()
        return [stmt] if stmt is not None else []

    def _parse_statement(self) -> Optional[Stmt]:
        tok = self._peek()
        if tok is None:
            return None
        text = tok.text

        if text == ";":
            self._advance()
            return None
        if text == "{":
            self._advance()
            stmts, term = self._parse_until({"}"})
            if term == "}":
                self._advance()
            return Stmt("simple", body=stmts) if stmts else None
        if text == "}":
            # Unbalanced close: consume so parsing always terminates.
            self._advance()
            return None

        if tok.kind == TokenKind.KEYWORD:
            if text == "if":
                return self._parse_if()
            if text in ("while", "for"):
                self._advance()
                cond = self._skip_parens()
                body = self._parse_block_or_statement()
                return Stmt("loop", tokens=cond, body=body)
            if text == "do":
                self._advance()
                body = self._parse_block_or_statement()
                cond: List[Token] = []
                if self._peek() is not None and self._peek().text == "while":
                    self._advance()
                    cond = self._skip_parens()
                    self._consume_semicolon()
                return Stmt("loop", tokens=cond, body=body)
            if text == "switch":
                return self._parse_switch()
            if text == "try":
                return self._parse_try()
            if text in ("return", "throw"):
                self._advance()
                expr = self._consume_simple()
                return Stmt("return", tokens=expr)
            if text in ("break", "continue"):
                self._advance()
                self._consume_semicolon()
                return Stmt(text)
            if text == "goto":
                self._advance()
                target = self._consume_simple()
                return Stmt("goto", tokens=target)
            if text == "else":
                # Dangling else (shouldn't happen); treat as a block.
                self._advance()
                return Stmt("simple", body=self._parse_block_or_statement())

        # Label: IDENT ':' not inside an expression.
        if (
            tok.kind == TokenKind.IDENT
            and self.i + 1 < len(self.tokens)
            and self.tokens[self.i + 1].text == ":"
        ):
            self._advance()
            self._advance()
            return Stmt("label", tokens=[tok])

        return Stmt("simple", tokens=self._consume_simple(leading=True))

    def _parse_if(self) -> Stmt:
        self._advance()  # if
        cond = self._skip_parens()
        then = self._parse_block_or_statement()
        orelse: List[Stmt] = []
        nxt = self._peek()
        if nxt is not None and nxt.text == "else":
            self._advance()
            orelse = self._parse_block_or_statement()
        return Stmt("if", tokens=cond, body=then, orelse=orelse)

    def _parse_switch(self) -> Stmt:
        self._advance()  # switch
        cond = self._skip_parens()
        cases: List[List[Stmt]] = []
        tok = self._peek()
        if tok is None or tok.text != "{":
            return Stmt("switch", tokens=cond, cases=cases)
        self._advance()
        current: Optional[List[Stmt]] = None
        while True:
            tok = self._peek()
            if tok is None:
                break
            if tok.text == "}":
                self._advance()
                break
            if tok.kind == TokenKind.KEYWORD and tok.text in ("case", "default"):
                self._advance()
                while self._peek() is not None and self._peek().text != ":":
                    self._advance()
                if self._peek() is not None:
                    self._advance()  # ':'
                current = []
                cases.append(current)
                continue
            stmt = self._parse_statement()
            if stmt is not None:
                if current is None:
                    current = []
                    cases.append(current)
                current.append(stmt)
        return Stmt("switch", tokens=cond, cases=cases)

    def _parse_try(self) -> Stmt:
        self._advance()  # try
        body = self._parse_block_or_statement()
        cases: List[List[Stmt]] = []
        while True:
            tok = self._peek()
            if tok is None or tok.text not in ("catch", "finally"):
                break
            self._advance()
            if tok.text == "catch":
                self._skip_parens()
            cases.append(self._parse_block_or_statement())
        return Stmt("try", body=body, cases=cases)

    def _consume_semicolon(self) -> None:
        tok = self._peek()
        if tok is not None and tok.text == ";":
            self._advance()

    def _consume_simple(self, leading: bool = False) -> List[Token]:
        """Consume an expression up to ``;`` (or a block boundary)."""
        out: List[Token] = []
        depth = 0
        while True:
            tok = self._peek()
            if tok is None:
                return out
            if tok.text in "([":
                depth += 1
            elif tok.text in ")]":
                if depth == 0:
                    return out
                depth -= 1
            elif depth == 0:
                if tok.text == ";":
                    self._advance()
                    return out
                if tok.text in ("{", "}"):
                    return out
            out.append(tok)
            self._advance()


# ---------------------------------------------------------------------------
# Python statement tree (indentation-based)
# ---------------------------------------------------------------------------

_PY_HEADERS = {"if", "elif", "else", "while", "for", "try", "except",
               "finally", "with", "def", "class", "match", "case"}


def _py_parse_lines(source: SourceFile, start: int, end: int) -> List[Stmt]:
    """Parse lines [start, end] (1-based, inclusive) into a statement tree."""
    lines = source.lines
    tokens_by_line: dict = {}
    for tok in source.tokens:
        if tok.is_code():
            tokens_by_line.setdefault(tok.line, []).append(tok)

    def indent_of(ln: int) -> int:
        line = lines[ln - 1]
        width = 0
        for ch in line:
            if ch == " ":
                width += 1
            elif ch == "\t":
                width += 8 - width % 8
            else:
                break
        return width

    def is_code_line(ln: int) -> bool:
        return ln in tokens_by_line

    def block_end(header: int, base_indent: int) -> int:
        last = header
        ln = header + 1
        while ln <= end:
            if is_code_line(ln):
                if indent_of(ln) <= base_indent:
                    break
                last = ln
            ln += 1
        return last

    def parse_range(lo: int, hi: int) -> List[Stmt]:
        stmts: List[Stmt] = []
        ln = lo
        while ln <= hi:
            if not is_code_line(ln):
                ln += 1
                continue
            toks = tokens_by_line[ln]
            head = toks[0]
            word = head.text if head.kind == TokenKind.KEYWORD else None
            indent = indent_of(ln)
            if word in ("if", "while", "for", "with", "try", "match"):
                body_end = block_end(ln, indent)
                body = parse_range(ln + 1, body_end)
                kind = {"if": "if", "while": "loop", "for": "loop",
                        "with": "simple", "try": "try", "match": "switch"}[word]
                root = Stmt(kind, tokens=toks, body=body)
                tail = root
                ln = body_end + 1
                while ln <= hi and is_code_line(ln) and indent_of(ln) == indent:
                    nxt = tokens_by_line[ln][0]
                    nword = nxt.text if nxt.kind == TokenKind.KEYWORD else None
                    if nword not in ("elif", "else", "except", "finally", "case"):
                        break
                    arm_end = block_end(ln, indent)
                    arm = parse_range(ln + 1, arm_end)
                    if nword == "elif":
                        nested = Stmt("if", tokens=tokens_by_line[ln], body=arm)
                        tail.orelse = [nested]
                        tail = nested
                    elif nword == "else":
                        tail.orelse = arm
                    else:
                        tail.cases.append(arm)
                    ln = arm_end + 1
                stmts.append(root)
                continue
            if word in ("return", "raise"):
                stmts.append(Stmt("return", tokens=toks))
            elif word == "break":
                stmts.append(Stmt("break"))
            elif word == "continue":
                stmts.append(Stmt("continue"))
            elif word in ("def", "class"):
                body_end = block_end(ln, indent)
                stmts.append(Stmt("simple", tokens=toks))
                ln = body_end + 1
                continue
            else:
                stmts.append(Stmt("simple", tokens=toks))
            ln += 1
        return stmts

    return parse_range(start, end)


def parse_statements(func: FunctionInfo, source: SourceFile) -> List[Stmt]:
    """Recover the statement tree for one function."""
    if source.spec.function_style == "indent":
        return _py_parse_lines(source, func.start_line + 1, func.end_line)
    body = func.body_tokens
    # Strip the enclosing braces if present.
    code = [t for t in body if t.is_code()]
    if code and code[0].text == "{" and code[-1].text == "}":
        code = code[1:-1]
    return _BraceStmtParser(code).parse()


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CFG:
    """A function's control-flow graph plus derived metrics."""

    graph: nx.DiGraph
    entry: int
    exit: int

    @property
    def n_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges()

    @property
    def cyclomatic(self) -> int:
        """Cyclomatic number from graph shape: E - N + 2."""
        return self.n_edges - self.n_nodes + 2

    @property
    def n_branch_nodes(self) -> int:
        return sum(1 for n in self.graph if self.graph.out_degree(n) > 1)

    def path_count(self, cap: int = 10**9) -> int:
        """Number of acyclic entry→exit paths (NPATH-like), capped.

        Back edges are removed first, so loops contribute their fall-through
        structure only; the count is exact on the resulting DAG.
        """
        dag = _acyclic_view(self.graph, self.entry)
        counts = {self.entry: 1}
        for node in nx.topological_sort(dag):
            c = counts.get(node, 0)
            if c == 0 and node != self.entry:
                continue
            for succ in dag.successors(node):
                counts[succ] = min(cap, counts.get(succ, 0) + c)
        return counts.get(self.exit, 0)

    def max_depth(self) -> int:
        """Longest acyclic path length from entry (statement depth proxy)."""
        dag = _acyclic_view(self.graph, self.entry)
        depth = {self.entry: 0}
        for node in nx.topological_sort(dag):
            if node not in depth:
                continue
            for succ in dag.successors(node):
                depth[succ] = max(depth.get(succ, 0), depth[node] + 1)
        return max(depth.values(), default=0)


def _acyclic_view(graph: nx.DiGraph, entry: int) -> nx.DiGraph:
    """Copy of ``graph`` with back edges (DFS on ``entry``) removed."""
    dag = graph.copy()
    back = []
    state: dict = {}
    stack = [(entry, iter(graph.successors(entry)))]
    state[entry] = 1
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if state.get(succ, 0) == 1:
                back.append((node, succ))
            elif state.get(succ, 0) == 0:
                state[succ] = 1
                stack.append((succ, iter(graph.successors(succ))))
                advanced = True
                break
        if not advanced:
            state[node] = 2
            stack.pop()
    dag.remove_edges_from(back)
    # Remove any residual cycles among nodes unreachable from entry.
    while True:
        try:
            cycle = nx.find_cycle(dag)
        except nx.NetworkXNoCycle:
            break
        dag.remove_edge(*cycle[0][:2])
    return dag


class _CFGBuilder:
    """Lowers a statement tree to a CFG of abstract nodes."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._ids = itertools.count()
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self._labels: dict = {}
        self._pending_gotos: List[Tuple[int, str]] = []

    def _new(self, kind: str, stmt: Optional[Stmt] = None) -> int:
        node = next(self._ids)
        self.graph.add_node(node, kind=kind, stmt=stmt)
        return node

    def build(self, stmts: List[Stmt]) -> CFG:
        tails = self._lower_seq(stmts, [self.entry], None, None)
        for tail in tails:
            self.graph.add_edge(tail, self.exit)
        for node, label in self._pending_gotos:
            target = self._labels.get(label, self.exit)
            self.graph.add_edge(node, target)
        if self.graph.out_degree(self.entry) == 0:
            self.graph.add_edge(self.entry, self.exit)
        return CFG(self.graph, self.entry, self.exit)

    def _connect(self, preds: List[int], node: int) -> None:
        for p in preds:
            self.graph.add_edge(p, node)

    def _lower_seq(
        self,
        stmts: List[Stmt],
        preds: List[int],
        break_to: Optional[int],
        continue_to: Optional[int],
    ) -> List[int]:
        """Lower a statement list; return the open fall-through nodes."""
        current = preds
        for stmt in stmts:
            if not current:
                current = []  # unreachable code still lowered, dangling
            current = self._lower_stmt(stmt, current, break_to, continue_to)
        return current

    def _lower_stmt(
        self,
        stmt: Stmt,
        preds: List[int],
        break_to: Optional[int],
        continue_to: Optional[int],
    ) -> List[int]:
        kind = stmt.kind
        if kind == "simple":
            node = self._new("stmt", stmt)
            self._connect(preds, node)
            if stmt.body:  # brace block wrapped as simple
                return self._lower_seq(stmt.body, [node], break_to, continue_to)
            return [node]
        if kind == "if":
            cond = self._new("branch", stmt)
            self._connect(preds, cond)
            then_tails = self._lower_seq(stmt.body, [cond], break_to, continue_to)
            if stmt.orelse:
                else_tails = self._lower_seq(stmt.orelse, [cond], break_to, continue_to)
                return then_tails + else_tails
            return then_tails + [cond]
        if kind == "loop":
            head = self._new("loop", stmt)
            after = self._new("join")
            self._connect(preds, head)
            body_tails = self._lower_seq(stmt.body, [head], after, head)
            for tail in body_tails:
                self.graph.add_edge(tail, head)
            self.graph.add_edge(head, after)
            return [after]
        if kind == "switch":
            head = self._new("branch", stmt)
            after = self._new("join")
            self._connect(preds, head)
            arms = stmt.cases or [stmt.body]
            for arm in arms:
                tails = self._lower_seq(arm, [head], after, continue_to)
                for tail in tails:
                    self.graph.add_edge(tail, after)
            self.graph.add_edge(head, after)  # no-match / fallthrough
            return [after]
        if kind == "try":
            head = self._new("stmt", stmt)
            self._connect(preds, head)
            tails = self._lower_seq(stmt.body, [head], break_to, continue_to)
            all_tails = list(tails)
            for handler in stmt.cases:
                h_tails = self._lower_seq(handler, [head], break_to, continue_to)
                all_tails.extend(h_tails)
            return all_tails
        if kind == "return":
            node = self._new("return", stmt)
            self._connect(preds, node)
            self.graph.add_edge(node, self.exit)
            return []
        if kind == "break":
            node = self._new("break", stmt)
            self._connect(preds, node)
            self.graph.add_edge(node, break_to if break_to is not None else self.exit)
            return []
        if kind == "continue":
            node = self._new("continue", stmt)
            self._connect(preds, node)
            self.graph.add_edge(
                node, continue_to if continue_to is not None else self.exit
            )
            return []
        if kind == "goto":
            node = self._new("goto", stmt)
            self._connect(preds, node)
            label = stmt.tokens[0].text if stmt.tokens else ""
            self._pending_gotos.append((node, label))
            return []
        if kind == "label":
            node = self._new("label", stmt)
            self._connect(preds, node)
            if stmt.tokens:
                self._labels[stmt.tokens[0].text] = node
            return [node]
        raise ValueError(f"unknown statement kind: {kind!r}")


def build_cfg(func: FunctionInfo, source: SourceFile) -> CFG:
    """Build the control-flow graph for one function."""
    return _CFGBuilder().build(parse_statements(func, source))


@dataclass(frozen=True)
class ControlFlowMetrics:
    """Codebase-level control-flow feature summary."""

    n_cfg_nodes: int
    n_cfg_edges: int
    n_branch_nodes: int
    n_return_nodes: int
    total_paths: int
    max_paths: int
    mean_cyclomatic: float


def measure_codebase(codebase: Codebase, path_cap: int = 10**6) -> ControlFlowMetrics:
    """Aggregate CFG metrics across every function in ``codebase``."""
    nodes = edges = branches = returns = 0
    total_paths = 0
    max_paths = 0
    cyclomatics: List[int] = []
    for source in codebase:
        for func in extract_functions(source):
            cfg = build_cfg(func, source)
            nodes += cfg.n_nodes
            edges += cfg.n_edges
            branches += cfg.n_branch_nodes
            returns += sum(
                1 for n, d in cfg.graph.nodes(data=True) if d["kind"] == "return"
            )
            paths = cfg.path_count(cap=path_cap)
            total_paths = min(path_cap, total_paths + paths)
            max_paths = max(max_paths, paths)
            cyclomatics.append(cfg.cyclomatic)
    mean_cc = sum(cyclomatics) / len(cyclomatics) if cyclomatics else 0.0
    return ControlFlowMetrics(
        n_cfg_nodes=nodes,
        n_cfg_edges=edges,
        n_branch_nodes=branches,
        n_return_nodes=returns,
        total_paths=total_paths,
        max_paths=max_paths,
        mean_cyclomatic=mean_cc,
    )
