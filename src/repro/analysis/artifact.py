"""Single-parse analysis artifact: lex and parse each file exactly once.

Before this module existed, every analyzer re-derived its own view of a
file: the function table was extracted up to a dozen times per file
(cyclomatic twice, functions, control flow, data flow, three smell
detectors, the call graph, the OO metrics, the attack-surface scan), each
function's CFG was built twice (control flow and data flow), and almost
every analyzer re-filtered the token stream down to code tokens.

A :class:`FileArtifact` computes each of those views once, lazily, and
caches it on the :class:`~repro.lang.sourcefile.SourceFile` itself (via
:func:`artifact_for`), so whichever analyzer asks first pays and everyone
after shares. The contract is strict byte-identity: every cached view is
produced by exactly the code the analyzers previously called themselves
(same functions, same argument order), so analyzer outputs — feature rows,
``file_record`` dicts, cached digests — are bit-for-bit unchanged. The
differential harness in ``tests/analysis/test_fused_equivalence.py``
enforces this against the preserved legacy collectors.

Sharing notes (why reuse cannot change results):

- ``FunctionInfo.body_tokens`` produced by the parser are already
  code-filtered, so analyzers that re-filter them get the same list back.
- CFG node ids come from a per-build counter, so a CFG built here is
  structurally identical to one an analyzer would have built itself; the
  control-flow consumer reads metrics and the data-flow consumer runs
  read-only fixpoints (``path_count`` copies the graph before mutating).
- ``extract_classes`` fills in ``FunctionInfo.owner`` on the shared
  function list; no analyzer reads ``owner`` from a fresh extraction, so
  the mutation is unobservable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG, build_cfg, code_tokens_by_line
from repro.analysis.dataflow import NodeFlowInfo, node_flow_info
from repro.lang.parser import (
    ClassInfo,
    FunctionInfo,
    extract_classes,
    extract_functions,
)
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import Token, TokenKind


class FileArtifact:
    """Memoized per-file analysis views, each computed at most once."""

    __slots__ = (
        "source",
        "_code_tokens",
        "_functions",
        "_classes",
        "_cfgs",
        "_tokens_by_line",
        "_node_infos",
        "_call_sites",
    )

    def __init__(self, source: SourceFile):
        self.source = source
        self._code_tokens: Optional[List[Token]] = None
        self._functions: Optional[List[FunctionInfo]] = None
        self._classes: Optional[List[ClassInfo]] = None
        self._cfgs: Optional[List[CFG]] = None
        self._tokens_by_line: Optional[dict] = None
        self._node_infos: Optional[List[Optional[NodeFlowInfo]]] = None
        self._call_sites: Optional[List[int]] = None

    # -- raw views --------------------------------------------------------

    @property
    def tokens(self) -> List[Token]:
        """Full token stream (lexed once by the SourceFile)."""
        return self.source.tokens

    @property
    def lines(self) -> List[str]:
        """Physical lines (cached by the SourceFile)."""
        return self.source.lines

    @property
    def code_tokens(self) -> List[Token]:
        """Tokens with comments/newlines filtered out."""
        if self._code_tokens is None:
            self._code_tokens = [t for t in self.source.tokens if t.is_code()]
        return self._code_tokens

    @property
    def tokens_by_line(self) -> dict:
        """Code tokens grouped by line (Python statement recovery)."""
        if self._tokens_by_line is None:
            self._tokens_by_line = code_tokens_by_line(self.source.tokens)
        return self._tokens_by_line

    # -- structural views -------------------------------------------------

    @property
    def functions(self) -> List[FunctionInfo]:
        """The file's function table, extracted once."""
        if self._functions is None:
            self._functions = extract_functions(self.source, self.code_tokens)
        return self._functions

    @property
    def classes(self) -> List[ClassInfo]:
        """The file's class table, matched against the shared functions."""
        if self._classes is None:
            self._classes = extract_classes(
                self.source, self.code_tokens, self.functions
            )
        return self._classes

    @property
    def cfgs(self) -> List[CFG]:
        """One CFG per entry of :attr:`functions`, index-aligned."""
        if self._cfgs is None:
            by_line = (
                self.tokens_by_line
                if self.source.spec.function_style == "indent"
                else None
            )
            self._cfgs = [
                build_cfg(func, self.source, by_line) for func in self.functions
            ]
        return self._cfgs

    @property
    def call_sites(self) -> List[int]:
        """Indices into :attr:`code_tokens` of call sites (ident + ``(``).

        The shared symbol index the bug-finding checkers scan: computed
        with exactly the predicate ``c_checkers._call_sites`` uses, so a
        checker receiving this list sees the same indices it would have
        derived itself.
        """
        if self._call_sites is None:
            toks = self.code_tokens
            open_paren = "("
            self._call_sites = [
                i
                for i in range(len(toks) - 1)
                if toks[i].kind is TokenKind.IDENT
                and toks[i + 1].text == open_paren
            ]
        return self._call_sites

    def node_info(self, index: int) -> NodeFlowInfo:
        """Per-node (defs, uses, calls) for ``cfgs[index]``, computed once."""
        if self._node_infos is None:
            self._node_infos = [None] * len(self.cfgs)
        info = self._node_infos[index]
        if info is None:
            info = self._node_infos[index] = node_flow_info(self.cfgs[index])
        return info

    def function_cfgs(self) -> List[Tuple[FunctionInfo, CFG]]:
        """(function, cfg) pairs in function-table order."""
        return list(zip(self.functions, self.cfgs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileArtifact({self.source.path!r})"


def artifact_for(source: SourceFile) -> FileArtifact:
    """The file's :class:`FileArtifact`, created on first request.

    The artifact rides on the SourceFile (``source._artifact``), so
    per-file and tree-level analyzers running in the same process share
    one parse no matter which asks first. It is deliberately excluded
    from pickling (``SourceFile.__getstate__``): worker processes rebuild
    it lazily from the shipped text.
    """
    artifact = source._artifact
    if artifact is None:
        artifact = source._artifact = FileArtifact(source)
    return artifact


def artifacts_for(codebase: Codebase) -> Dict[str, FileArtifact]:
    """Artifacts for every file in ``codebase``, keyed by path."""
    return {f.path: artifact_for(f) for f in codebase.files}
