"""Static-analysis substrate: every code-property extractor the testbed runs.

Modules:

- :mod:`repro.analysis.loc` — cloc-equivalent line counting
- :mod:`repro.analysis.cyclomatic` — McCabe complexity
- :mod:`repro.analysis.halstead` — Halstead software-science measures
- :mod:`repro.analysis.functions` — function/declaration/variable shape
- :mod:`repro.analysis.cfg` — statement trees and control-flow graphs
- :mod:`repro.analysis.dataflow` — reaching definitions, def-use, taint
- :mod:`repro.analysis.callgraph` — whole-codebase call graphs
- :mod:`repro.analysis.smells` — code-smell detectors
- :mod:`repro.analysis.churn` — commit history, churn, developer activity
- :mod:`repro.analysis.artifact` — the shared single-parse FileArtifact
"""

from repro.analysis import (
    artifact,
    callgraph,
    cfg,
    churn,
    cyclomatic,
    dataflow,
    dynamic,
    functions,
    halstead,
    identifiers,
    loc,
    maintainability,
    oo,
    smells,
)
from repro.analysis.artifact import FileArtifact, artifact_for, artifacts_for
from repro.analysis.cfg import CFG, build_cfg, parse_statements
from repro.analysis.churn import Commit, CommitHistory, FileDelta
from repro.analysis.cyclomatic import codebase_complexity, file_complexity
from repro.analysis.halstead import HalsteadMetrics
from repro.analysis.loc import LineCounts, count_codebase, count_file, kloc
from repro.analysis.smells import Smell, detect_codebase, smell_counts

__all__ = [
    "CFG",
    "FileArtifact",
    "Commit",
    "CommitHistory",
    "FileDelta",
    "HalsteadMetrics",
    "LineCounts",
    "Smell",
    "artifact",
    "artifact_for",
    "artifacts_for",
    "build_cfg",
    "callgraph",
    "cfg",
    "churn",
    "codebase_complexity",
    "count_codebase",
    "count_file",
    "cyclomatic",
    "dataflow",
    "dynamic",
    "detect_codebase",
    "file_complexity",
    "functions",
    "halstead",
    "identifiers",
    "kloc",
    "loc",
    "maintainability",
    "oo",
    "parse_statements",
    "smell_counts",
    "smells",
]
