"""Whole-codebase call-graph construction and metrics.

Nodes are functions defined anywhere in the codebase; an edge ``f -> g``
means the body of ``f`` contains a call site of ``g``. Name-based
resolution is standard for lightweight multi-language analysis and is how
the paper's proposed testbed would approximate "numbers of calling and
returning targets" (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.lang.parser import FunctionInfo, extract_functions
from repro.lang.sourcefile import Codebase
from repro.lang.tokens import TokenKind

#: Conventional program entry points per language.
ENTRY_POINT_NAMES = frozenset({"main", "__main__", "run", "start"})


def build_callgraph(codebase: Codebase, artifacts=None) -> nx.DiGraph:
    """Build the name-resolved call graph of ``codebase``.

    Node attributes: ``file`` (defining path), ``public`` (visibility
    heuristic), ``params`` (parameter count). Calls to undefined names
    (library functions) are recorded on the caller as the ``external``
    attribute count rather than as graph nodes. ``artifacts`` maps paths
    to per-file analysis artifacts (``.functions``) so the pass reuses
    the shared function tables.
    """
    graph = nx.DiGraph()
    defined: Dict[str, FunctionInfo] = {}
    bodies: List[Tuple[str, FunctionInfo]] = []
    for source in codebase:
        art = artifacts.get(source.path) if artifacts is not None else None
        functions = art.functions if art is not None else extract_functions(source)
        for func in functions:
            # First definition wins; duplicates (overloads, per-file statics)
            # merge into one node, which is the right granularity for
            # codebase-level fan-in/fan-out statistics.
            if func.name not in defined:
                defined[func.name] = func
                graph.add_node(
                    func.name,
                    file=source.path,
                    public=func.is_public,
                    params=func.param_count,
                    external=0,
                )
            bodies.append((func.name, func))

    for caller, func in bodies:
        external = 0
        tokens = func.body_tokens  # already code-filtered by the parser
        for i, tok in enumerate(tokens[:-1]):
            if tok.kind != TokenKind.IDENT or tokens[i + 1].text != "(":
                continue
            callee = tok.text
            if callee == caller and i > 0 and tokens[i - 1].text in (".", "->"):
                continue
            if callee in defined:
                graph.add_edge(caller, callee)
            else:
                external += 1
        graph.nodes[caller]["external"] = graph.nodes[caller]["external"] + external
    return graph


@dataclass(frozen=True)
class CallGraphMetrics:
    """Summary metrics of a codebase's call graph."""

    n_functions: int
    n_edges: int
    n_external_calls: int
    max_fan_in: int
    max_fan_out: int
    mean_fan_out: float
    n_entry_points: int
    reachable_from_entry: int
    n_recursive_cycles: int

    @property
    def reachable_fraction(self) -> float:
        """Share of defined functions reachable from an entry point."""
        if self.n_functions == 0:
            return 0.0
        return self.reachable_from_entry / self.n_functions


def measure_codebase(codebase: Codebase, artifacts=None) -> CallGraphMetrics:
    """Compute :class:`CallGraphMetrics` for ``codebase``."""
    graph = build_callgraph(codebase, artifacts)
    n = graph.number_of_nodes()
    fan_in = [graph.in_degree(v) for v in graph]
    fan_out = [graph.out_degree(v) for v in graph]
    entries = [v for v in graph if v in ENTRY_POINT_NAMES]
    reachable: Set[str] = set()
    for entry in entries:
        reachable |= nx.descendants(graph, entry) | {entry}
    cycles = sum(1 for scc in nx.strongly_connected_components(graph)
                 if len(scc) > 1 or graph.has_edge(*(list(scc) * 2)[:2]))
    return CallGraphMetrics(
        n_functions=n,
        n_edges=graph.number_of_edges(),
        n_external_calls=sum(d["external"] for _, d in graph.nodes(data=True)),
        max_fan_in=max(fan_in, default=0),
        max_fan_out=max(fan_out, default=0),
        mean_fan_out=sum(fan_out) / n if n else 0.0,
        n_entry_points=len(entries),
        reachable_from_entry=len(reachable),
        n_recursive_cycles=cycles,
    )
