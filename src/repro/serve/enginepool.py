"""A pool of extraction engines for concurrent ``/analyze`` traffic.

The threaded daemon serialised every ``/analyze`` behind one
``engine_lock`` — correct, but it caps extraction throughput at one
request at a time no matter how many cores the host has. The
:class:`EnginePool` replaces the lock with *N engines checked out per
request*: each pool slot is a long-lived worker **process** owning its
own :class:`~repro.engine.ExtractionEngine` (built from the same
:class:`~repro.engine.EngineConfig` the CLI resolves), so N requests
extract genuinely in parallel — separate interpreters, no GIL
contention — while the (N+1)-th waits for a slot.

Checkout semantics are shed-don't-collapse, mirroring the
micro-batcher: a request that cannot obtain a slot within
``checkout_timeout`` seconds is refused with :class:`PoolSaturated`,
which the HTTP layer turns into ``503`` + ``Retry-After``. The wait
itself is observable (``serve.pool.wait.seconds``), as are the shed
count (``serve.pool.shed``), the live occupancy gauge
(``serve.pool.in_use``), and one-per-lifetime executor rebuilds after
a worker death (``serve.pool.rebuilds``).

Byte-identity is preserved by construction: a pool worker runs the very
same ``ExtractionEngine.extract_one`` the offline CLI runs (serial
inside the worker — the pool slot *is* the parallelism unit), with the
same float normalisation and the same cache semantics, so a row
computed by slot 3 is indistinguishable from one computed by the CLI.
Worker-side telemetry (spans, counters — cache hits included) is
captured in the worker's private :mod:`repro.obs` session, stamped with
the request's trace ID, shipped back, and grafted into the parent
session, exactly like the extraction scheduler's own process-pool
workers.
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.engine import EngineConfig, ExtractionEngine
from repro.lang import Codebase

#: Default bound on how long a request waits for a free engine before
#: being shed (seconds). Matches the serving layer's request timeout
#: scale: a pool that cannot free a slot in this long is overloaded.
DEFAULT_CHECKOUT_TIMEOUT = 30.0


class PoolSaturated(Exception):
    """Every engine is busy and the checkout wait timed out.

    ``retry_after`` is the whole-second hint the HTTP layer forwards as
    the ``Retry-After`` header.
    """

    def __init__(self, retry_after: int = 1):
        super().__init__(
            f"all extraction engines are busy; retry after {retry_after}s")
        self.retry_after = retry_after


# -- worker-process side ----------------------------------------------

#: Per-process engine handle, built lazily from the config the
#: initializer ships in. Module-level because pool workers re-import
#: this module; one engine per worker process, reused across requests.
_WORKER_ENGINE: Optional[ExtractionEngine] = None


def _pool_init(config: EngineConfig) -> None:
    """Executor initializer: build this worker's private engine.

    The engine is forced to ``workers=1`` — the pool slot is the unit
    of parallelism, so a pooled engine extracting through a nested
    process pool would only oversubscribe the host. Cache configuration
    (filesystem or shared SQLite) carries over unchanged: all slots
    share one warm cache exactly like concurrent CLI runs do.
    """
    global _WORKER_ENGINE
    _WORKER_ENGINE = dataclasses.replace(config, workers=1).build()


def _pool_extract(
    codebase: Codebase,
    include_dynamic: bool,
    capture: bool,
    trace_id: Optional[str],
) -> Tuple[Dict[str, float], Optional[List[dict]], Optional[Dict[str, float]]]:
    """Run one extraction on this worker's engine; ship telemetry home.

    Returns ``(row, span_records, counters)``. With ``capture`` the
    worker records into a private obs session stamped with the
    request's ``trace_id`` so the shipped spans stitch into the same
    request trace after the parent grafts them.
    """
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("engine pool worker was not initialised")
    session = obs.configure(trace_id=trace_id) if capture else None
    try:
        row = engine.extract_one(codebase, include_dynamic=include_dynamic)
    finally:
        if session is not None:
            obs.disable()
    if session is not None:
        return (row, session.tracer.records(),
                session.metrics.snapshot()["counters"])
    return row, None, None


def _pool_extract_records(
    codebase: Codebase,
    capture: bool,
    trace_id: Optional[str],
) -> Tuple[Tuple[Dict[str, float], List[dict]],
           Optional[List[dict]], Optional[Dict[str, float]]]:
    """Row + per-file records on this worker's engine (the /gate unit).

    Same telemetry contract as :func:`_pool_extract`; the payload is
    ``(row, records)`` from
    :meth:`~repro.engine.ExtractionEngine.extract_with_records`, so a
    pooled gate shares the worker engine's file-granular cache with
    every other request the slot has served.
    """
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("engine pool worker was not initialised")
    session = obs.configure(trace_id=trace_id) if capture else None
    try:
        row, records = engine.extract_with_records(codebase)
    finally:
        if session is not None:
            obs.disable()
    if session is not None:
        return ((row, records), session.tracer.records(),
                session.metrics.snapshot()["counters"])
    return (row, records), None, None


# -- parent side ------------------------------------------------------


class EnginePool:
    """N extraction engines, each in its own process, checked out per
    request.

    Args:
        config: the engine shape every slot builds (workers forced to
            1 per slot; cache/failure knobs carry over).
        size: number of engine slots — the daemon's concurrent
            ``/analyze`` extraction bound.
        checkout_timeout: seconds a request may wait for a free slot
            before being shed with :class:`PoolSaturated`.

    The pool is thread-safe: handler threads call
    :meth:`extract_one` concurrently; a semaphore bounds occupancy and
    the shared :class:`~concurrent.futures.ProcessPoolExecutor` (one
    worker per slot) runs the extractions. A worker death rebuilds the
    executor once per pool lifetime (``serve.pool.rebuilds``); a second
    breakage propagates.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        size: int = 2,
        checkout_timeout: float = DEFAULT_CHECKOUT_TIMEOUT,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if not checkout_timeout > 0:
            raise ValueError("checkout_timeout must be positive")
        self.config = config if config is not None else EngineConfig()
        self.size = int(size)
        self.checkout_timeout = float(checkout_timeout)
        self._slots = threading.Semaphore(self.size)
        self._state_lock = threading.Lock()
        self._in_use = 0
        self._rebuilds_left = 1
        self._closed = False
        self._executor = self._make_executor()
        # Resolved once: /healthz asks for this on every probe, and
        # building an engine (cache backend included) per probe would
        # be wasteful.
        self._engine_shape = dataclasses.replace(
            self.config, workers=1).build().describe()

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.size,
            initializer=_pool_init,
            initargs=(self.config,),
        )

    # -- lifecycle ----------------------------------------------------

    def prestart(self) -> None:
        """Spawn and initialise every worker now, not on first request.

        ProcessPoolExecutor spawns workers on demand; a daemon that
        warms the pool at boot pays import/fork cost once, before
        traffic, instead of on the first N requests.
        """
        list(self._executor.map(_noop, range(self.size)))

    def close(self) -> None:
        """Shut the executor down; in-flight extractions finish first."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
        executor.shutdown(wait=True, cancel_futures=True)

    # -- extraction ---------------------------------------------------

    def extract_one(
        self,
        codebase: Codebase,
        include_dynamic: bool = False,
    ) -> Dict[str, float]:
        """Extract one codebase on the next free engine.

        Blocks up to ``checkout_timeout`` for a slot, then raises
        :class:`PoolSaturated`. Extraction failures surface as
        :class:`~repro.engine.ExtractionError` exactly like the
        in-process path. The caller's thread-bound trace ID rides into
        the worker and its spans/counters are grafted back, so one
        request still exports one connected trace.
        """
        waited_from = perf_counter()
        if not self._slots.acquire(timeout=self.checkout_timeout):
            obs.incr("serve.pool.shed")
            obs.event("serve.pool.shed", size=self.size,
                      waited_s=round(self.checkout_timeout, 3))
            raise PoolSaturated(max(1, int(self.checkout_timeout // 4)))
        obs.observe("serve.pool.wait.seconds", perf_counter() - waited_from)
        with self._state_lock:
            self._in_use += 1
            obs.gauge("serve.pool.in_use", self._in_use)
        try:
            capture = obs.is_enabled()
            trace_id = obs.current_trace_id() if capture else None
            with obs.span("serve.pool.extract", pool_size=self.size,
                          app=codebase.name):
                row, spans, counters = self._run(
                    _pool_extract, codebase, include_dynamic, capture,
                    trace_id)
            if spans:
                obs.graft_spans(spans)
            if counters:
                obs.merge_counters(counters)
            return row
        finally:
            with self._state_lock:
                self._in_use -= 1
                obs.gauge("serve.pool.in_use", self._in_use)
            self._slots.release()

    def extract_with_records(
        self,
        codebase: Codebase,
    ) -> Tuple[Dict[str, float], List[dict]]:
        """Extract row *and* per-file records on the next free engine.

        The ``/gate`` counterpart of :meth:`extract_one`: identical
        checkout semantics (:class:`PoolSaturated` on timeout, wait
        observed, occupancy gauged, telemetry grafted back), but the
        worker runs ``extract_with_records`` so the caller gets the
        per-file records the delta engine diffs.
        """
        waited_from = perf_counter()
        if not self._slots.acquire(timeout=self.checkout_timeout):
            obs.incr("serve.pool.shed")
            obs.event("serve.pool.shed", size=self.size,
                      waited_s=round(self.checkout_timeout, 3))
            raise PoolSaturated(max(1, int(self.checkout_timeout // 4)))
        obs.observe("serve.pool.wait.seconds", perf_counter() - waited_from)
        with self._state_lock:
            self._in_use += 1
            obs.gauge("serve.pool.in_use", self._in_use)
        try:
            capture = obs.is_enabled()
            trace_id = obs.current_trace_id() if capture else None
            with obs.span("serve.pool.extract_records",
                          pool_size=self.size, app=codebase.name):
                (row, records), spans, counters = self._run(
                    _pool_extract_records, codebase, capture, trace_id)
            if spans:
                obs.graft_spans(spans)
            if counters:
                obs.merge_counters(counters)
            return row, records
        finally:
            with self._state_lock:
                self._in_use -= 1
                obs.gauge("serve.pool.in_use", self._in_use)
            self._slots.release()

    def _run(self, fn, *args):
        """Submit to the executor, surviving one worker-pool breakage."""
        try:
            executor = self._executor_or_raise()
            return executor.submit(fn, *args).result()
        except BrokenExecutor:
            self._rebuild()
            executor = self._executor_or_raise()
            return executor.submit(fn, *args).result()

    def _executor_or_raise(self) -> ProcessPoolExecutor:
        with self._state_lock:
            if self._closed:
                raise RuntimeError("engine pool is closed")
            return self._executor

    def _rebuild(self) -> None:
        """Replace a broken executor, at most once per pool lifetime."""
        with self._state_lock:
            if self._closed:
                raise RuntimeError("engine pool is closed")
            if self._rebuilds_left <= 0:
                raise RuntimeError(
                    "engine pool worker processes died twice; refusing "
                    "to rebuild again")
            self._rebuilds_left -= 1
            broken = self._executor
            self._executor = self._make_executor()
        obs.incr("serve.pool.rebuilds")
        obs.event("serve.pool.rebuild", size=self.size)
        broken.shutdown(wait=False, cancel_futures=True)

    # -- identity -----------------------------------------------------

    @property
    def in_use(self) -> int:
        with self._state_lock:
            return self._in_use

    def describe(self) -> Dict[str, Any]:
        """The pool's shape for ``/healthz`` (size, occupancy, engine)."""
        return {
            "size": self.size,
            "in_use": self.in_use,
            "checkout_timeout": self.checkout_timeout,
            "engine": dict(self._engine_shape),
        }


def _noop(_: int) -> None:
    """Warm-up unit for :meth:`EnginePool.prestart`."""
    return None
