"""Canonical JSON payloads shared by the CLI and the serving layer.

Byte-identity between the offline path (``repro analyze --json``) and
the served path (``POST /analyze``, ``POST /predict``) is an explicit
contract — the CI serve-smoke leg diffs the two outputs — so both go
through these builders and through :func:`dump_payload` for
serialisation. Anything that would change a byte of output (key order,
float formatting, indentation, the trailing newline) lives here and
nowhere else.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.core.model import SecurityModel
from repro.lang import Codebase

#: Version stamp carried by every payload this module builds, so
#: consumers of ``analyze --json``, ``/predict``, and ``/analyze`` can
#: detect shape changes. Bump on any breaking payload change.
SCHEMA_VERSION = 1


def prediction_payload(
    model: SecurityModel, features: Dict[str, float]
) -> Dict[str, object]:
    """One application's model verdict as a plain JSON-ready dict.

    Predictions are computed per row through the exact same
    :meth:`~repro.core.model.SecurityModel.assess` call the offline
    CLI uses — micro-batching amortises queue and dispatch overhead but
    never vectorises across rows, so a batched response is bit-equal to
    a one-at-a-time response.
    """
    assessment = model.assess(features)
    return {
        "schema_version": SCHEMA_VERSION,
        "probabilities": {
            key: assessment.probabilities[key]
            for key in sorted(assessment.probabilities)
        },
        "estimates": {
            key: assessment.estimates[key]
            for key in sorted(assessment.estimates)
        },
        "overall_risk": assessment.overall_risk,
    }


def analysis_payload(
    codebase: Codebase,
    row: Dict[str, float],
    model: Optional[SecurityModel] = None,
) -> Dict[str, object]:
    """The ``analyze --json`` document for one extracted codebase.

    With a model, a ``prediction`` block (the :func:`prediction_payload`
    shape) rides along — this is the document ``POST /analyze`` returns
    and the serve-smoke leg diffs against the offline CLI.
    """
    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "app": codebase.name,
        "files": len(codebase),
        "primary_language": codebase.primary_language(),
        "features": dict(sorted(row.items())),
    }
    if model is not None:
        payload["prediction"] = prediction_payload(model, row)
    return payload


def dump_payload(payload: Dict[str, object]) -> str:
    """Serialise a payload exactly as the CLI prints it.

    ``sort_keys`` + two-space indent + trailing newline: the bytes a
    redirected ``repro analyze --json`` writes, and the bytes the HTTP
    endpoints respond with.
    """
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
