"""Structured access log for the prediction daemon.

One JSON object per line, one line per finished request — method,
path, status, duration, trace ID, and the request's batching facts —
so production traffic can be joined against traces (by ``trace_id``)
and replayed into offline analysis without parsing free-text log
formats. Enabled by ``repro serve --access-log PATH``; the default
daemon writes no access log at all.

Writes are append-only and emitted as a single ``os.write`` per line
on an ``O_APPEND`` descriptor, so concurrent handler threads (and even
multiple daemons sharing a file) never interleave partial lines. A
failed write drops that line and the log keeps going — access logging
must never take down request serving.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Optional


class AccessLog:
    """Append-only JSONL access log (thread-safe, crash-tolerant)."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._fd: Optional[int] = None

    def _ensure_fd(self) -> int:
        if self._fd is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        return self._fd

    def log(self, **fields: Any) -> None:
        """Append one request record (a ``ts`` timestamp is added)."""
        record = {"ts": round(time.time(), 6)}
        record.update(fields)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            try:
                os.write(self._ensure_fd(), line.encode("utf-8"))
            except OSError:
                # Drop the line, drop the fd; the next request retries
                # with a fresh descriptor.
                self._close_fd()

    def _close_fd(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover - double-close race
                pass
            self._fd = None

    def close(self) -> None:
        """Release the descriptor (idempotent)."""
        with self._lock:
            self._close_fd()
