"""Model bundle loading and the multi-model store the daemon serves.

`load_model` is the one place a pickled :class:`~repro.core.model.
SecurityModel` is read and validated — the CLI's ``--model`` flag and
the daemon's startup both route through it, so a corrupt file or a
stale ``format_version`` fails with the same clear message everywhere
instead of an attribute error deep in prediction.

A :class:`ModelStore` holds one or more named bundles (``NAME=PATH``
specs; a bare path is named after its file stem). The first spec is the
default model; requests select others with ``"model": "<name>"`` in
the JSON body.

Stores are *immutable snapshots* once built, which is what makes the
daemon's blue/green hot reload safe: a reload builds and fully
validates a brand-new store (carrying ``version = old.version + 1`` and
remembering the specs it was built from, so a SIGHUP re-scan can
re-read the same paths), then swaps the server's store reference
atomically. In-flight requests keep serving from the old snapshot they
resolved at routing time; a reload that fails validation leaves the old
snapshot in place untouched.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, List, Optional, Sequence

from repro.core.model import SecurityModel


class ModelLoadError(Exception):
    """A saved model file could not be loaded or failed validation."""


def load_model(path: str) -> SecurityModel:
    """Load and validate one pickled model bundle.

    Raises :class:`ModelLoadError` with a user-facing message on a
    unreadable pickle, a pickle of the wrong type, or a format-version
    mismatch (retraining is the fix in every case).
    """
    try:
        with open(path, "rb") as handle:
            model = pickle.load(handle)
    except OSError as exc:
        raise ModelLoadError(f"error: cannot read model file {path!r}: {exc}")
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError,
            UnicodeDecodeError) as exc:
        raise ModelLoadError(
            f"error: {path!r} is not a readable model file "
            f"({type(exc).__name__}); retrain with `repro train`"
        )
    if not isinstance(model, SecurityModel):
        raise ModelLoadError(f"error: {path!r} is not a saved model")
    version = getattr(model, "format_version", None)
    if version != SecurityModel.FORMAT_VERSION:
        raise ModelLoadError(
            f"error: {path!r} has model format version {version!r} "
            f"but this build expects {SecurityModel.FORMAT_VERSION}; "
            f"retrain with `repro train`"
        )
    return model


class ModelStore:
    """Named, validated model bundles — one immutable serving snapshot.

    ``version`` is a monotonically increasing identity stamp: the
    daemon's startup store is version 1 and every successful hot reload
    mints the next number, so clients (and the hot-reload tests) can
    tell exactly which snapshot answered a request. ``specs`` remembers
    the ``NAME=PATH`` specs the snapshot was built from, which is what
    a SIGHUP re-scan re-reads.
    """

    def __init__(self, version: int = 1,
                 specs: Sequence[str] = ()):
        self._models: Dict[str, SecurityModel] = {}
        self._default: Optional[str] = None
        self.version = int(version)
        self.specs: tuple = tuple(specs)

    @classmethod
    def from_specs(cls, specs: Sequence[str],
                   version: int = 1) -> "ModelStore":
        """Build a store from ``NAME=PATH`` (or bare ``PATH``) specs.

        The first spec becomes the default model. Raises
        :class:`ModelLoadError` on an invalid file or a duplicate name.
        The whole store is validated before anyone can serve from it —
        a reload that fails here never replaces a live store.
        """
        store = cls(version=version, specs=specs)
        for spec in specs:
            name, sep, path = spec.partition("=")
            if not sep:
                path = spec
                name = os.path.splitext(os.path.basename(spec))[0]
            if not name or not path:
                raise ModelLoadError(
                    f"error: bad model spec {spec!r} (want NAME=PATH)")
            store.add(name, load_model(path))
        if not store._models:
            raise ModelLoadError("error: at least one --model is required")
        return store

    def add(self, name: str, model: SecurityModel) -> None:
        if name in self._models:
            raise ModelLoadError(f"error: duplicate model name {name!r}")
        self._models[name] = model
        if self._default is None:
            self._default = name

    def get(self, name: Optional[str] = None) -> SecurityModel:
        """The named model, or the default when ``name`` is None.

        Raises :class:`KeyError` (carrying the unknown name) so the
        HTTP layer can map it to a 404.
        """
        if name is None:
            name = self._default
        if name is None or name not in self._models:
            raise KeyError(name)
        return self._models[name]

    @property
    def default_name(self) -> Optional[str]:
        return self._default

    def names(self) -> List[str]:
        """Model names, default first, the rest in load order."""
        return sorted(self._models, key=lambda n: n != self._default)

    def describe(self) -> List[Dict[str, object]]:
        """Per-model identity block for ``/healthz``."""
        return [
            {
                "name": name,
                "default": name == self._default,
                "format_version": model.format_version,
                "features": len(model.feature_names),
                "hypotheses": len(model.hypotheses),
            }
            for name, model in ((n, self._models[n]) for n in self.names())
        ]

    def __len__(self) -> int:
        return len(self._models)
