"""The asyncio serving tier: keep-alive HTTP in front of an engine pool.

:class:`AsyncPredictionServer` is the production face of the daemon.
The event loop owns only connection plumbing — accepting sockets,
parsing HTTP/1.1 framing, writing responses, persistent connections —
and hands every parsed request to the same transport-free
:func:`repro.serve.handlers.handle_request` the threaded tier uses, on
a bounded worker-thread pool. Because the handler and payload layers
are shared, every byte the async tier serves is identical to the
threaded tier and to the offline CLI.

The concurrency model, layer by layer:

- **Connections** are cheap: thousands can sit in keep-alive on the
  event loop without holding a thread.
- **Requests** are bounded by ``max_inflight``; beyond it the loop
  sheds directly with ``503`` + ``Retry-After`` without ever touching
  a worker thread (``serve.aio.shed``).
- **Predictions** flow through the shared
  :class:`~repro.serve.batching.MicroBatcher` (its queue depth is the
  prediction-side bound).
- **Extractions** check an engine out of the
  :class:`~repro.serve.enginepool.EnginePool` — N worker *processes*,
  so ``/analyze`` throughput scales with pool size instead of
  serialising behind the threaded tier's single engine lock.

Model hot reload is inherited from :class:`~repro.serve.server.
ServingApp`: ``POST /models`` (or a SIGHUP re-scan wired up by the
CLI) builds and validates a brand-new store, then swaps the reference
atomically — in-flight requests finish on the snapshot they resolved
at routing time, so a swap drops zero requests.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import Dict, Optional, Sequence

from repro import obs, package_version
from repro.engine import EngineConfig
from repro.lang import Codebase
from repro.obs.slo import SloRule
from repro.serve.enginepool import (
    DEFAULT_CHECKOUT_TIMEOUT,
    EnginePool,
)
from repro.serve.handlers import Response, handle_request
from repro.serve.modelstore import ModelStore
from repro.serve.server import DEFAULT_REQUEST_TIMEOUT, ServingApp

#: Connections idle in keep-alive longer than this are closed.
DEFAULT_KEEPALIVE_TIMEOUT = 30.0

#: Largest accepted request body (bytes). /analyze and /predict bodies
#: are small JSON documents; anything near this is a mistake or abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: StreamReader limit — also caps one header block.
_READER_LIMIT = 256 * 1024


class _BadRequest(Exception):
    """Malformed HTTP framing; the connection is answered and closed."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class AsyncPredictionServer(ServingApp):
    """The asyncio daemon: keep-alive HTTP, engine pool, hot reload.

    Args:
        store: validated model bundles (first one is the default).
        config: the :class:`~repro.engine.EngineConfig` every pool slot
            builds its private engine from (cache and failure-policy
            knobs carry over; workers are forced to 1 per slot).
        host/port: bind address; port 0 picks a free port (the bound
            one is on :attr:`port` after construction — the listening
            socket is created eagerly so embedders and tests can
            discover it before the loop runs).
        pool_size: engine slots — the concurrent ``/analyze``
            extraction bound.
        checkout_timeout: seconds an ``/analyze`` request may wait for
            a free engine before being shed.
        handler_threads: worker threads running ``handle_request``;
            defaults to ``4 * pool_size + 4`` so enough handlers exist
            to keep every engine busy while others wait on batched
            predictions.
        max_inflight: requests admitted past the loop at once; beyond
            it the loop sheds directly with 503. Defaults to
            ``2 * handler_threads``.
        keepalive_timeout: idle seconds before a persistent connection
            is closed.

    Remaining knobs are :class:`~repro.serve.server.ServingApp`'s.
    """

    def __init__(
        self,
        store: ModelStore,
        config: Optional[EngineConfig] = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        pool_size: int = 2,
        checkout_timeout: float = DEFAULT_CHECKOUT_TIMEOUT,
        handler_threads: Optional[int] = None,
        max_inflight: Optional[int] = None,
        keepalive_timeout: float = DEFAULT_KEEPALIVE_TIMEOUT,
        batch_window: float = 0.01,
        batch_size: int = 16,
        queue_depth: int = 64,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        slo_rules: Optional[Sequence[SloRule]] = None,
        access_log: Optional[str] = None,
    ):
        super().__init__(
            store,
            batch_window=batch_window,
            batch_size=batch_size,
            queue_depth=queue_depth,
            request_timeout=request_timeout,
            slo_rules=slo_rules,
            access_log=access_log,
        )
        self.pool = EnginePool(
            config, size=pool_size, checkout_timeout=checkout_timeout)
        if handler_threads is None:
            handler_threads = 4 * pool_size + 4
        if handler_threads < 1:
            raise ValueError("handler_threads must be >= 1")
        self.handler_threads = int(handler_threads)
        self.max_inflight = int(
            max_inflight if max_inflight is not None
            else 2 * self.handler_threads)
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.keepalive_timeout = float(keepalive_timeout)
        self._executor = ThreadPoolExecutor(
            max_workers=self.handler_threads,
            thread_name_prefix="repro-serve-aio")
        # Bind eagerly: `port=0` callers need the real port before the
        # loop exists, and a bind failure should raise here, not on a
        # background thread later.
        self._sock = socket.create_server(
            (host, port), backlog=128, reuse_port=False)
        self._sock.setblocking(False)
        self.host, self.port = self._sock.getsockname()[:2]
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._stopped = threading.Event()
        self._started = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._conn_tasks: "set[asyncio.Task]" = set()

    # -- ServingApp contract ------------------------------------------

    def analyze_one(self, codebase: Codebase,
                    include_dynamic: bool = False) -> Dict[str, float]:
        return self.pool.extract_one(
            codebase, include_dynamic=include_dynamic)

    def analyze_records(self, codebase: Codebase):
        return self.pool.extract_with_records(codebase)

    def engine_shape(self) -> Dict[str, object]:
        return dict(self.pool.describe()["engine"])

    def health(self) -> Dict[str, object]:
        doc = super().health()
        shape = self.pool.describe()
        doc["pool"] = {
            "size": shape["size"],
            "in_use": shape["in_use"],
            "checkout_timeout": shape["checkout_timeout"],
        }
        doc["inflight"] = {
            "current": self._inflight,
            "max": self.max_inflight,
            "handler_threads": self.handler_threads,
        }
        return doc

    # -- lifecycle ----------------------------------------------------

    def start(self, warm: bool = False) -> None:
        """Serve on a background thread (tests and embedding).

        Returns once the listener is accepting. With ``warm`` the
        engine pool's worker processes are spawned and initialised
        before the listener opens, so the first requests never pay
        fork-and-import cost.
        """
        if warm:
            self.pool.prestart()
        self.batcher.start()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-aio", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)

    def serve_forever(self, warm: bool = True) -> None:
        """Serve on the calling thread (the CLI path); blocks."""
        if warm:
            self.pool.prestart()
        self.batcher.start()
        self._run_loop()

    def stop(self) -> None:
        """Graceful stop: close the listener, drain, release engines.

        In-flight requests finish (their connections close after the
        final response is written); idle keep-alive connections are
        closed immediately.
        """
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:  # loop tore down between checks
                pass
            self._stopped.wait(timeout=30.0)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._executor.shutdown(wait=True)
        self.pool.close()
        try:
            self._sock.close()
        except OSError:  # already closed by the loop
            pass
        self._shutdown_app()

    def _signal_stop(self) -> None:
        if self._stop_requested is not None:
            self._stop_requested.set()

    # -- event loop ----------------------------------------------------

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, sock=self._sock, limit=_READER_LIMIT)
        self._started.set()
        try:
            await self._stop_requested.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # Idle connections are parked awaiting their next request;
            # cancel them. Busy ones are mid-handler and protected by
            # a shield, so gathering waits for their final write.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True)
            self._stopped.set()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass  # client vanished or the server is stopping
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        """One persistent connection: request after request until
        close."""
        while True:
            try:
                request = await self._read_request(reader)
            except _BadRequest as exc:
                await self._write_response(
                    writer, _error_response(exc.status, str(exc)),
                    keep_alive=False)
                return
            if request is None:  # clean close or idle timeout
                return
            method, path, headers, body, client_keep_alive = request
            if not self._admit():
                obs.incr("serve.aio.shed")
                await self._write_response(
                    writer,
                    _error_response(
                        503, "server is at capacity; retry shortly",
                        headers=[("Retry-After", "1")]),
                    keep_alive=client_keep_alive)
                if not client_keep_alive:
                    return
                continue
            try:
                # Shield the handler hop: a stop() mid-request must let
                # the response finish (zero dropped requests), not
                # cancel it.
                response = await asyncio.shield(
                    asyncio.get_running_loop().run_in_executor(
                        self._executor, handle_request, self, method,
                        path, body, headers))
            finally:
                self._release()
            await self._write_response(
                writer, response, keep_alive=client_keep_alive)
            if not client_keep_alive:
                return

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` on clean close / idle timeout.

        Returns ``(method, path, headers, body, keep_alive)``. Raises
        :class:`_BadRequest` on framing the server cannot or will not
        handle.
        """
        try:
            blob = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"),
                timeout=self.keepalive_timeout)
        except asyncio.TimeoutError:
            return None
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:  # clean EOF between requests
                return None
            raise _BadRequest(400, "truncated request head")
        except asyncio.LimitOverrunError:
            raise _BadRequest(431, "request header block too large")
        head = blob.decode("latin-1").split("\r\n")
        parts = head[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(400, f"malformed request line: {head[0]!r}")
        method, path, version = parts
        headers: Dict[str, str] = {}
        for line in head[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _BadRequest(501, "chunked request bodies not supported")
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _BadRequest(400, "bad Content-Length")
        if length < 0:
            raise _BadRequest(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(413, "request body too large")
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length),
                    timeout=self.keepalive_timeout)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                raise _BadRequest(400, "truncated request body")
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        return method, path, headers, body, keep_alive

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: Response,
                              keep_alive: bool) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Server: repro-serve/{package_version()}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}"
                     for name, value in response.headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + response.body)
        await writer.drain()

    # -- admission control --------------------------------------------

    def _admit(self) -> bool:
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            obs.gauge("serve.aio.inflight", self._inflight)
            return True

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            obs.gauge("serve.aio.inflight", self._inflight)


def _error_response(status: int, message: str,
                    headers: Optional[list] = None) -> Response:
    """A transport-level error the handlers never saw (framing, shed).

    Mirrors the handler layer's error document shape so clients parse
    every error the same way.
    """
    from repro.serve.payloads import dump_payload

    obs.incr("serve.errors")
    obs.incr(f"serve.errors.{status}")
    return Response(
        status=status,
        body=dump_payload({"error": message}).encode("utf-8"),
        headers=list(headers or []))
