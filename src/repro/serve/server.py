"""The prediction daemon: ThreadingHTTPServer glue around the handlers.

:class:`PredictionServer` owns the long-lived pieces — the validated
:class:`~repro.serve.modelstore.ModelStore`, one shared
:class:`~repro.engine.ExtractionEngine` handle (so the feature cache,
worker pool, and failure policies apply to served traffic exactly as
they do offline), the :class:`~repro.serve.batching.MicroBatcher`, and
the :mod:`repro.obs` session ``/metricz`` reads. Each HTTP exchange is
delegated to :func:`repro.serve.handlers.handle_request`; handler
threads only touch thread-safe state (metrics instruments, the
batcher's queue, the engine behind its lock).

Endpoints:

- ``GET /healthz`` — build identity (package version), loaded models,
  engine and batching configuration.
- ``GET /metricz`` — the metrics registry snapshot as JSON.
- ``POST /predict`` — ``{"features": {...}}`` or
  ``{"instances": [{...}, ...]}``, optional ``"model": NAME``;
  micro-batched, byte-identical to the offline prediction path.
- ``POST /analyze`` — ``{"path": DIR}`` or ``{"paths": [...]}``,
  optional ``"model"``/``"dynamic"``; extraction through the shared
  engine, byte-identical to ``repro analyze --json``.
- ``GET /models`` / ``POST /models`` — inspect the live model-store
  snapshot / hot-reload it blue/green (see
  :meth:`PredictionServer.reload_models`).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs, package_version
from repro.core.model import SecurityModel
from repro.engine import ExtractionEngine
from repro.lang import Codebase
from repro.obs.slo import SloRule, evaluate_slos
from repro.serve.accesslog import AccessLog
from repro.serve.batching import MicroBatcher
from repro.serve.handlers import handle_request
from repro.serve.modelstore import ModelStore
from repro.serve.payloads import SCHEMA_VERSION, prediction_payload

#: How long a handler thread waits for its batched prediction before
#: giving up with a 503 (covers a wedged or stopped collector).
DEFAULT_REQUEST_TIMEOUT = 30.0


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin transport shell; all logic lives in `handlers`."""

    #: Overridden per-server by the subclass `PredictionServer` mints.
    app: "PredictionServer"
    server_version = f"repro-serve/{package_version()}"

    # Access logging would interleave with the CLI's own output; the
    # serve.* metrics are the supported observation channel.
    def log_message(self, format: str, *args) -> None:
        pass

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        headers = {key.lower(): value for key, value in self.headers.items()}
        response = handle_request(self.app, method, self.path, body,
                                  headers=headers)
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


class ServingApp:
    """Transport-free application core shared by both serving tiers.

    Owns everything :func:`~repro.serve.handlers.handle_request` needs
    from its ``app`` — the model-store snapshot (and its blue/green
    reload), the prediction micro-batcher, timeouts, SLO rules, and the
    access log. Subclasses add a transport (threaded ``http.server`` or
    asyncio) and an extraction strategy (:meth:`analyze_one`).

    Args:
        store: validated model bundles (first one is the default).
        batch_window/batch_size/queue_depth: micro-batching knobs (see
            :class:`~repro.serve.batching.MicroBatcher`).
        request_timeout: per-request wait bound on batched predictions.
        slo_rules: optional :class:`~repro.obs.slo.SloRule` sequence;
            ``/healthz`` evaluates them against the live metrics
            snapshot and reports ``status: degraded`` on any breach.
        access_log: optional path; each finished request appends one
            structured JSON line (method, path, status, duration,
            trace ID, batching facts) there.
    """

    def __init__(
        self,
        store: ModelStore,
        batch_window: float = 0.01,
        batch_size: int = 16,
        queue_depth: int = 64,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        slo_rules: Optional[Sequence[SloRule]] = None,
        access_log: Optional[str] = None,
    ):
        self._store = store
        self._reload_lock = threading.Lock()
        self.request_timeout = request_timeout
        self.slo_rules = tuple(slo_rules or ())
        self.access_log = AccessLog(access_log) if access_log else None
        # /metricz needs a registry even when the CLI passed no
        # --profile/--trace; reuse an existing session rather than
        # clobbering the one main() configured.
        if not obs.is_enabled():
            obs.configure()
        self.batcher = MicroBatcher(
            self._predict_batch,
            batch_window=batch_window,
            batch_size=batch_size,
            queue_depth=queue_depth,
        )

    # -- models: snapshot + blue/green reload --------------------------

    @property
    def store(self) -> ModelStore:
        """The live model-store snapshot (atomic reference read).

        Handlers read this exactly once per request and resolve every
        model lookup through that snapshot, so a concurrent
        :meth:`reload_models` can never mix two store versions inside
        one response.
        """
        return self._store

    def reload_models(self, specs: Optional[Sequence[str]] = None):
        """Blue/green reload: build → validate → swap atomically.

        With ``specs`` the new store is built from those ``NAME=PATH``
        specs; without, the current store's own specs are re-read from
        disk (the SIGHUP re-scan path). The new store is fully loaded
        and validated *before* the reference swap, so a corrupt
        replacement raises :class:`~repro.serve.modelstore.
        ModelLoadError` and leaves the old store serving untouched.
        Returns ``(old, new)`` store snapshots.
        """
        with self._reload_lock:
            old = self._store
            new = ModelStore.from_specs(
                list(specs) if specs is not None else old.specs,
                version=old.version + 1)
            self._store = new
        obs.incr("serve.model_reloads")
        obs.event("serve.model_reload", version=new.version,
                  previous_version=old.version, models=new.names())
        return old, new

    # -- the extraction hop -------------------------------------------

    def analyze_one(self, codebase: Codebase,
                    include_dynamic: bool = False) -> Dict[str, float]:
        """Extract one codebase for ``/analyze``.

        Each tier supplies its concurrency model: the threaded tier
        serialises behind one engine lock; the async tier checks an
        engine out of its pool.
        """
        raise NotImplementedError

    def analyze_records(
        self, codebase: Codebase
    ) -> Tuple[Dict[str, float], List[Dict[str, object]]]:
        """Feature row plus per-file analyzer records, for ``/gate``.

        Same concurrency contract as :meth:`analyze_one`; backed by
        :meth:`~repro.engine.ExtractionEngine.extract_with_records`, so
        a warm daemon re-gates a one-file edit by recomputing one file.
        """
        raise NotImplementedError

    def engine_shape(self) -> Dict[str, object]:
        """The extraction backend's identity block for ``/healthz``."""
        raise NotImplementedError

    # -- the batched model hop ----------------------------------------

    @staticmethod
    def _predict_batch(
        items: List[Tuple[SecurityModel, Dict[str, float]]]
    ) -> List[Dict[str, object]]:
        """Resolve one micro-batch; runs on the collector thread.

        Per-row ``assess`` inside the batch keeps responses bit-equal
        to the offline path; the batching win is amortised queue and
        thread wakeup overhead, not cross-row vectorisation.
        """
        return [prediction_payload(model, row) for model, row in items]

    # -- shared lifecycle ---------------------------------------------

    def _shutdown_app(self) -> None:
        """Stop the shared app pieces (batcher, access log)."""
        self.batcher.stop()
        if self.access_log is not None:
            self.access_log.close()

    # -- identity -----------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` document (also handy for embedders).

        With SLO rules loaded, the document gains an ``slo`` block
        (verdict, breached rule names, rule count) evaluated against
        the live metrics snapshot, and ``status`` flips to
        ``"degraded"`` on any breach. Without rules the document keeps
        its historical shape — ``status`` is always ``"ok"``.
        """
        store = self.store
        doc: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "version": package_version(),
            "models": store.describe(),
            "models_version": store.version,
            "engine": self.engine_shape(),
            "batching": {
                "window_s": self.batcher.batch_window,
                "max_size": self.batcher.batch_size,
                "queue_depth": self.batcher.queue_depth,
            },
        }
        if self.slo_rules:
            session = obs.active()
            snapshot = (session.metrics.snapshot()
                        if session is not None else {})
            report = evaluate_slos(self.slo_rules, snapshot)
            doc["slo"] = {
                "ok": report.ok,
                "breached": report.breached,
                "rules": len(self.slo_rules),
            }
            if not report.ok:
                doc["status"] = "degraded"
        return doc


class PredictionServer(ServingApp):
    """The threaded prediction daemon (``ThreadingHTTPServer`` tier).

    One shared :class:`~repro.engine.ExtractionEngine` handle behind a
    lock — ``/analyze`` requests serialise, which is simple and
    correct but caps extraction throughput at one request at a time.
    The asyncio tier (:class:`~repro.serve.aio.AsyncPredictionServer`)
    trades the lock for an engine pool.

    Args:
        store: validated model bundles (first one is the default).
        engine: shared extraction engine handle for ``/analyze``;
            defaults to :meth:`ExtractionEngine.from_env`, so
            ``REPRO_WORKERS``/``REPRO_CACHE_DIR`` shape served traffic
            the same way they shape CLI runs.
        host/port: bind address; port 0 picks a free port (the bound
            one is on :attr:`port` after construction).

    Remaining knobs are :class:`ServingApp`'s.
    """

    def __init__(
        self,
        store: ModelStore,
        engine: Optional[ExtractionEngine] = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        batch_window: float = 0.01,
        batch_size: int = 16,
        queue_depth: int = 64,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        slo_rules: Optional[Sequence[SloRule]] = None,
        access_log: Optional[str] = None,
    ):
        super().__init__(
            store,
            batch_window=batch_window,
            batch_size=batch_size,
            queue_depth=queue_depth,
            request_timeout=request_timeout,
            slo_rules=slo_rules,
            access_log=access_log,
        )
        self.engine = engine if engine is not None \
            else ExtractionEngine.from_env()
        self.engine_lock = threading.Lock()
        handler_cls = type(
            "BoundRequestHandler", (_RequestHandler,), {"app": self})
        self.httpd = ThreadingHTTPServer((host, port), handler_cls)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # -- the extraction hop -------------------------------------------

    def analyze_one(self, codebase: Codebase,
                    include_dynamic: bool = False) -> Dict[str, float]:
        with self.engine_lock:
            return self.engine.extract_one(
                codebase, include_dynamic=include_dynamic)

    def analyze_records(
        self, codebase: Codebase
    ) -> Tuple[Dict[str, float], List[Dict[str, object]]]:
        with self.engine_lock:
            return self.engine.extract_with_records(codebase)

    def engine_shape(self) -> Dict[str, object]:
        return self.engine.describe()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Serve in a background thread (tests and embedding)."""
        self.batcher.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path); blocks."""
        self.batcher.start()
        self.httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting, close the socket, stop the batcher."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._shutdown_app()
