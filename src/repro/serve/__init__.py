"""Prediction service layer: the testbed as a long-running daemon.

The paper's Figure-4 system is not a one-shot script: applications
stream in, features are extracted, and the trained model answers
CVE-hypothesis queries on demand. This package is that serving layer —
a stdlib-only HTTP daemon (`http.server.ThreadingHTTPServer`, no new
dependencies) in front of the trained :class:`~repro.core.model.
SecurityModel` bundles and the existing :class:`~repro.engine.
ExtractionEngine`:

- :mod:`repro.serve.modelstore` — loads and validates one or more
  saved model bundles at startup (named ``NAME=PATH`` specs);
- :mod:`repro.serve.batching` — micro-batches concurrent ``/predict``
  requests behind a bounded queue (configurable window and size) and
  sheds load with 503 + ``Retry-After`` when the queue is full;
- :mod:`repro.serve.payloads` — the one place request/CLI payloads are
  built and serialised, so served responses stay byte-identical to the
  offline ``repro analyze --json`` path;
- :mod:`repro.serve.handlers` — routing, validation, and per-endpoint
  metrics (``serve.requests`` / ``serve.errors`` counters and
  ``serve.<endpoint>.seconds`` histograms in :mod:`repro.obs`);
- :mod:`repro.serve.enginepool` — N extraction engines in worker
  processes, checked out per ``/analyze`` request (the async tier's
  concurrency unit);
- :mod:`repro.serve.server` — the shared app core
  (:class:`~repro.serve.server.ServingApp`: model store + blue/green
  hot reload, batcher, health) and the threaded daemon;
- :mod:`repro.serve.aio` — the asyncio daemon: keep-alive HTTP/1.1,
  engine-pool ``/analyze``, direct load shedding at the loop.

Both tiers serve ``POST /predict``, ``POST /analyze``,
``GET /healthz``, ``GET /metricz``, and ``GET|POST /models`` (model
hot reload), and both build every response in
:mod:`repro.serve.payloads` — so served bytes are identical across
tiers and to the offline ``repro analyze --json`` path.

Start one from the CLI with ``repro serve --model model.pkl`` or
programmatically::

    from repro.serve import AsyncPredictionServer, ModelStore

    store = ModelStore.from_specs(["default=model.pkl"])
    server = AsyncPredictionServer(store, port=0, pool_size=4)
    server.start()
    ...                                        # server.port is bound now
    server.stop()
"""

from repro.serve.aio import AsyncPredictionServer
from repro.serve.batching import MicroBatcher, QueueSaturated
from repro.serve.enginepool import EnginePool, PoolSaturated
from repro.serve.modelstore import ModelLoadError, ModelStore, load_model
from repro.serve.payloads import (
    SCHEMA_VERSION,
    analysis_payload,
    dump_payload,
    prediction_payload,
)
from repro.serve.server import PredictionServer, ServingApp

__all__ = [
    "AsyncPredictionServer",
    "EnginePool",
    "MicroBatcher",
    "ModelLoadError",
    "ModelStore",
    "PoolSaturated",
    "PredictionServer",
    "QueueSaturated",
    "SCHEMA_VERSION",
    "ServingApp",
    "analysis_payload",
    "dump_payload",
    "load_model",
    "prediction_payload",
]
