"""Prediction service layer: the testbed as a long-running daemon.

The paper's Figure-4 system is not a one-shot script: applications
stream in, features are extracted, and the trained model answers
CVE-hypothesis queries on demand. This package is that serving layer —
a stdlib-only HTTP daemon (`http.server.ThreadingHTTPServer`, no new
dependencies) in front of the trained :class:`~repro.core.model.
SecurityModel` bundles and the existing :class:`~repro.engine.
ExtractionEngine`:

- :mod:`repro.serve.modelstore` — loads and validates one or more
  saved model bundles at startup (named ``NAME=PATH`` specs);
- :mod:`repro.serve.batching` — micro-batches concurrent ``/predict``
  requests behind a bounded queue (configurable window and size) and
  sheds load with 503 + ``Retry-After`` when the queue is full;
- :mod:`repro.serve.payloads` — the one place request/CLI payloads are
  built and serialised, so served responses stay byte-identical to the
  offline ``repro analyze --json`` path;
- :mod:`repro.serve.handlers` — routing, validation, and per-endpoint
  metrics (``serve.requests`` / ``serve.errors`` counters and
  ``serve.<endpoint>.seconds`` histograms in :mod:`repro.obs`);
- :mod:`repro.serve.server` — the daemon itself: ``POST /predict``,
  ``POST /analyze``, ``GET /healthz``, ``GET /metricz``.

Start one from the CLI with ``repro serve --model model.pkl`` or
programmatically::

    from repro.serve import ModelStore, PredictionServer

    store = ModelStore.from_specs(["default=model.pkl"])
    server = PredictionServer(store, port=0)   # port 0: pick a free one
    server.start()
    ...                                        # server.port is bound now
    server.stop()
"""

from repro.serve.batching import MicroBatcher, QueueSaturated
from repro.serve.modelstore import ModelLoadError, ModelStore, load_model
from repro.serve.payloads import (
    SCHEMA_VERSION,
    analysis_payload,
    dump_payload,
    prediction_payload,
)
from repro.serve.server import PredictionServer

__all__ = [
    "MicroBatcher",
    "ModelLoadError",
    "ModelStore",
    "PredictionServer",
    "QueueSaturated",
    "SCHEMA_VERSION",
    "analysis_payload",
    "dump_payload",
    "load_model",
    "prediction_payload",
]
