"""Micro-batching with a bounded queue and explicit load shedding.

Concurrent ``/predict`` requests land on a bounded queue; a single
collector thread drains it in micro-batches — the first item opens a
batch, then the collector waits up to ``batch_window`` seconds for up
to ``batch_size`` items before handing the batch to the processing
callback. Each submission gets a :class:`concurrent.futures.Future`
the handler thread blocks on, so HTTP latency is (queue wait + window
remainder + batch processing), never unbounded.

Overload policy is shed-don't-collapse: when the queue is full,
:meth:`MicroBatcher.submit` raises :class:`QueueSaturated` immediately
and the HTTP layer turns that into ``503`` with a ``Retry-After``
header — a saturated server answers cheaply and stays up rather than
queueing unboundedly until it falls over.

Telemetry (``serve.batches``, ``serve.batch_size``, ``serve.shed``)
flows into the active :mod:`repro.obs` session.
"""

from __future__ import annotations

import math
import queue
import threading
from concurrent.futures import Future
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from repro import obs

#: Queue sentinel that wakes the collector up for shutdown.
_STOP = object()


class QueueSaturated(Exception):
    """The bounded inbound queue is full; the request must be shed.

    ``retry_after`` is the whole-second hint the HTTP layer forwards as
    the ``Retry-After`` header.
    """

    def __init__(self, retry_after: int):
        super().__init__(
            f"inbound queue is full; retry after {retry_after}s")
        self.retry_after = retry_after


class MicroBatcher:
    """Groups submissions into bounded micro-batches for one callback.

    Args:
        process: called with the list of batched items, must return one
            result per item (same order). Runs on the collector thread.
        batch_window: seconds the collector waits, after the first item
            of a batch arrives, for more items to amortise over.
        batch_size: maximum items per batch; a full batch dispatches
            before the window closes.
        queue_depth: bound on queued-but-unbatched submissions; beyond
            it, :meth:`submit` raises :class:`QueueSaturated`.
    """

    def __init__(
        self,
        process: Callable[[List[Any]], List[Any]],
        batch_window: float = 0.01,
        batch_size: int = 16,
        queue_depth: int = 64,
    ):
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._process = process
        self.batch_window = float(batch_window)
        self.batch_size = int(batch_size)
        self.queue_depth = int(queue_depth)
        self.retry_after = max(1, int(math.ceil(self.batch_window)))
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth)
        self._thread: Optional[threading.Thread] = None
        self._running = False

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-batcher", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the collector; queued-but-unprocessed futures error out.

        Bounded even under saturation: a blocking ``put`` here would
        park the SIGTERM path behind a full backlog while the
        collector is busy. Instead the stop sentinel is enqueued with
        ``put_nowait``, failing one queued entry per refusal to make
        room — each iteration either places the sentinel or shrinks
        the queue, so the loop terminates after at most ``queue_depth``
        drains.
        """
        if not self._running:
            return
        self._running = False
        while True:
            try:
                self._queue.put_nowait(_STOP)
                break
            except queue.Full:
                self._reject_one()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self._drain_rejected()

    # -- submission ---------------------------------------------------

    def submit(self, item: Any) -> "Future[Any]":
        """Enqueue one item; the returned future resolves to its result.

        Raises :class:`QueueSaturated` without blocking when the
        bounded queue is full (the shed path), or :class:`RuntimeError`
        when the batcher is not running.
        """
        if not self._running:
            raise RuntimeError("batcher is not running")
        future: "Future[Any]" = Future()
        try:
            self._queue.put_nowait((item, future))
        except queue.Full:
            obs.incr("serve.shed")
            obs.event("serve.shed", retry_after=self.retry_after,
                      queue_depth=self.queue_depth)
            raise QueueSaturated(self.retry_after) from None
        return future

    # -- collector ----------------------------------------------------

    def _loop(self) -> None:
        while True:
            entry = self._queue.get()
            if entry is _STOP:
                return
            batch: List[Tuple[Any, "Future[Any]"]] = [entry]
            deadline = perf_counter() + self.batch_window
            saw_stop = False
            while len(batch) < self.batch_size:
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    break
                try:
                    entry = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if entry is _STOP:
                    saw_stop = True
                    break
                batch.append(entry)
            self._dispatch(batch)
            if saw_stop:
                return

    def _dispatch(self, batch: List[Tuple[Any, "Future[Any]"]]) -> None:
        # A handler that shed or timed out cancels the futures it will
        # never collect; running the model on them would be pure waste.
        batch = [(item, future) for item, future in batch
                 if not future.cancelled()]
        if not batch:
            return
        obs.incr("serve.batches")
        obs.observe("serve.batch_size", len(batch))
        items = [item for item, _ in batch]
        try:
            results = self._process(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch callback returned {len(results)} results "
                    f"for {len(items)} items")
        except Exception as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)

    def _reject_one(self) -> None:
        """Pull one queued entry and fail its future (shutdown path)."""
        try:
            entry = self._queue.get_nowait()
        except queue.Empty:
            return
        if entry is _STOP:
            return
        _, future = entry
        if not future.done():
            future.set_exception(RuntimeError("server shutting down"))

    def _drain_rejected(self) -> None:
        """Fail anything still queued after shutdown (never hang callers)."""
        while not self._queue.empty():
            self._reject_one()
