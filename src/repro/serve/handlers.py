"""Request routing, validation, and per-endpoint metrics for the daemon.

Transport-free by design: :func:`handle_request` maps (method, path,
body bytes) to a :class:`Response`, so the whole HTTP surface is unit-
testable without sockets and the `http.server` glue in
:mod:`repro.serve.server` stays a thin shell.

Every request increments ``serve.requests`` and lands a latency
observation in ``serve.<endpoint>.seconds``; every non-2xx response
also increments ``serve.errors`` (plus ``serve.errors.<status>``).
These flow into the active :mod:`repro.obs` session, surface verbatim
on ``GET /metricz``, and show up in the ``--profile`` run report's
serving section.

Trace identity: every request gets a 128-bit trace ID — taken from an
inbound W3C ``traceparent`` header when the caller sent one, minted
otherwise — bound to the handler thread for the request's duration, so
the ``serve.request`` span, the extraction engine's spans, and even
spans grafted back from pool worker processes all stitch into one
trace. The ID is echoed on the response as ``X-Trace-Id`` and
``traceparent``, and stamped on the structured access log line when
the server has one configured.
"""

from __future__ import annotations

import json
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.engine import ExtractionError
from repro.lang import Codebase
from repro.obs.context import (
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    trace_scope,
)
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_exposition,
)
from repro.serve.batching import QueueSaturated
from repro.serve.enginepool import PoolSaturated
from repro.serve.modelstore import ModelLoadError
from repro.serve.payloads import (
    SCHEMA_VERSION,
    analysis_payload,
    dump_payload,
)

#: Routing table: path -> allowed methods. Anything else is 404/405.
ROUTES: Dict[str, Tuple[str, ...]] = {
    "/healthz": ("GET",),
    "/metricz": ("GET",),
    "/predict": ("POST",),
    "/analyze": ("POST",),
    "/gate": ("POST",),
    "/models": ("GET", "POST"),
}


@dataclass
class Response:
    """One finished HTTP exchange, ready for the transport to write."""

    status: int
    body: bytes
    headers: List[Tuple[str, str]] = field(default_factory=list)
    content_type: str = "application/json"

    def __post_init__(self) -> None:
        # Own the header list: the router appends trace headers to
        # every response, and a shared caller list (an HTTPError's
        # headers, a module constant) must not accumulate them.
        self.headers = list(self.headers)


@dataclass
class RequestContext:
    """Per-request facts shared between the router and the endpoints.

    ``headers`` is the inbound header map (keys lowercased);
    ``trace_id`` the request's resolved trace identity; ``method`` the
    HTTP method (for endpoints accepting more than one); ``batch_size``
    and ``shed`` are filled in by ``/predict`` for the access log.
    ``store`` is the model-store *snapshot* resolved once at routing
    time — every model lookup in the request goes through it, so a
    blue/green swap mid-request cannot mix two stores in one response.
    """

    headers: Dict[str, str] = field(default_factory=dict)
    trace_id: str = ""
    method: str = "GET"
    store: Optional[object] = None
    batch_size: Optional[int] = None
    shed: bool = False


class HTTPError(Exception):
    """A request the handler rejects with a specific status and message."""

    def __init__(self, status: int, message: str,
                 headers: Optional[List[Tuple[str, str]]] = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or []


def _json_response(status: int, payload,
                   headers: Optional[List[Tuple[str, str]]] = None
                   ) -> Response:
    return Response(status=status,
                    body=dump_payload(payload).encode("utf-8"),
                    headers=headers or [])


def _parse_body(body: bytes) -> dict:
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HTTPError(400, f"request body is not valid JSON: {exc}")
    if not isinstance(doc, dict):
        raise HTTPError(400, "request body must be a JSON object")
    return doc


def _validate_features(features, where: str) -> Dict[str, float]:
    if not isinstance(features, dict) or not features:
        raise HTTPError(
            400, f"{where} must be a non-empty object of feature values")
    row: Dict[str, float] = {}
    for name, value in features.items():
        if not isinstance(name, str) or isinstance(value, bool) \
                or not isinstance(value, (int, float)):
            raise HTTPError(
                400,
                f"{where} must map feature names to numbers "
                f"(bad entry: {name!r})")
        row[name] = float(value)
    return row


def _select_model(ctx: RequestContext, doc: dict, required: bool):
    """The model a request names (404 on unknown), or the default.

    Resolution goes through the request's store *snapshot*
    (``ctx.store``), never back through the live server attribute — a
    hot reload between two lookups in the same request must not let the
    response mix models from two store versions.

    ``/analyze`` passes ``required=False``: without a ``model`` key it
    returns features only, byte-identical to `analyze --json` without
    ``--model``.
    """
    store = ctx.store
    name = doc.get("model")
    if name is None and not required:
        return None, None
    if name is not None and not isinstance(name, str):
        raise HTTPError(400, "'model' must be a string")
    try:
        model = store.get(name)
    except KeyError:
        raise HTTPError(
            404,
            f"unknown model {name!r}; loaded models: {store.names()}")
    return model, name or store.default_name


def _discard_futures(futures) -> None:
    """Cancel predictions the handler will never collect.

    Used on the shed and timeout paths. Futures still queued are
    cancelled outright — the collector drops cancelled entries before
    running the model, so no work is wasted on them
    (``serve.cancelled``). Futures already batched or resolved cannot
    be cancelled; their results are computed and dropped
    (``serve.discarded``), counted so the wasted work is observable.
    """
    cancelled = sum(1 for future in futures if future.cancel())
    if cancelled:
        obs.incr("serve.cancelled", cancelled)
    if len(futures) - cancelled:
        obs.incr("serve.discarded", len(futures) - cancelled)


# -- endpoints --------------------------------------------------------


def _handle_healthz(app, doc: Optional[dict],
                    ctx: RequestContext) -> Response:
    return _json_response(200, app.health())


def _handle_metricz(app, doc: Optional[dict],
                    ctx: RequestContext) -> Response:
    session = obs.active()
    if session is None:  # pragma: no cover - server always configures obs
        raise HTTPError(503, "metrics session not configured")
    snapshot = session.metrics.snapshot()
    # Content negotiation: a Prometheus scraper (Accept: text/plain or
    # an OpenMetrics type) gets the text exposition; everything else —
    # including no Accept header at all — keeps the byte-stable JSON
    # document existing tooling parses.
    accept = ctx.headers.get("accept", "")
    if "text/plain" in accept or "openmetrics" in accept:
        return Response(
            status=200,
            body=prometheus_exposition(snapshot).encode("utf-8"),
            content_type=PROMETHEUS_CONTENT_TYPE)
    # The JSON document carries the uniform serve schema stamp (the
    # Prometheus exposition has its own format contract).
    return _json_response(
        200, {"schema_version": SCHEMA_VERSION, **snapshot})


def _handle_models(app, doc: Optional[dict],
                   ctx: RequestContext) -> Response:
    """``GET /models`` lists the live snapshot; ``POST`` hot-reloads.

    A POST body may name replacement specs (``{"models":
    ["NAME=PATH", ...]}``) or be empty / ``{"rescan": true}`` to
    re-read the specs the current store was built from (the same
    re-scan SIGHUP triggers). The reload is blue/green: the new store
    is fully built and validated first, then swapped in atomically —
    a corrupt replacement model yields 400 and the old store keeps
    serving; in-flight requests finish on the snapshot they started
    with either way.
    """
    if ctx.method == "GET":
        store = ctx.store
        return _json_response(200, {
            "schema_version": SCHEMA_VERSION,
            "version": store.version,
            "default": store.default_name,
            "models": store.describe(),
        })
    doc = doc or {}
    specs = doc.get("models")
    if specs is not None:
        if not isinstance(specs, list) or not specs or any(
                not isinstance(s, str) for s in specs):
            raise HTTPError(
                400, "'models' must be a non-empty array of NAME=PATH "
                     "specs")
    elif doc.get("rescan", True) is not True:
        raise HTTPError(400, "'rescan' must be true when no 'models' "
                             "are given")
    try:
        old, new = app.reload_models(specs)
    except ModelLoadError as exc:
        obs.incr("serve.model_reload_errors")
        raise HTTPError(400, str(exc))
    return _json_response(200, {
        "schema_version": SCHEMA_VERSION,
        "version": new.version,
        "previous_version": old.version,
        "default": new.default_name,
        "models": new.describe(),
    })


def _handle_predict(app, doc: dict, ctx: RequestContext) -> Response:
    model, model_name = _select_model(ctx, doc, required=True)
    if "instances" in doc:
        instances = doc["instances"]
        if not isinstance(instances, list) or not instances:
            raise HTTPError(400, "'instances' must be a non-empty array")
        rows = [_validate_features(inst, f"instances[{i}]")
                for i, inst in enumerate(instances)]
        batched = True
    elif "features" in doc:
        rows = [_validate_features(doc["features"], "'features'")]
        batched = False
    else:
        raise HTTPError(400, "request needs 'features' or 'instances'")
    ctx.batch_size = len(rows)
    futures = []
    try:
        for row in rows:
            futures.append(app.batcher.submit((model, row)))
    except QueueSaturated as exc:
        ctx.shed = True
        # Shedding mid-batch must not leak the already-enqueued
        # futures: nobody will collect them, so cancel them before the
        # collector wastes model work on orphans. (A future the
        # collector already picked up cannot be cancelled; its result
        # is simply dropped — counted so the waste is visible.)
        _discard_futures(futures)
        raise HTTPError(
            503, str(exc),
            headers=[("Retry-After", str(exc.retry_after))])
    # One wall-clock deadline for the whole request: waiting
    # request_timeout *per future* would let a k-instance batch hold a
    # handler thread for k times the configured bound.
    deadline = perf_counter() + app.request_timeout
    try:
        with obs.span("serve.batch_wait", items=len(futures)):
            predictions = []
            for future in futures:
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    raise FutureTimeout()
                predictions.append(future.result(timeout=remaining))
    except FutureTimeout:
        _discard_futures(futures)
        raise HTTPError(
            503, "prediction timed out",
            headers=[("Retry-After", str(app.batcher.retry_after))])
    if not batched:
        return _json_response(200, predictions[0])
    return _json_response(
        200, {"model": model_name, "predictions": predictions})


def _handle_analyze(app, doc: dict, ctx: RequestContext) -> Response:
    model, _ = _select_model(ctx, doc, required=False)
    dynamic = doc.get("dynamic", False)
    if not isinstance(dynamic, bool):
        raise HTTPError(400, "'dynamic' must be a boolean")
    if "paths" in doc:
        paths = doc["paths"]
        if not isinstance(paths, list) or not paths or any(
                not isinstance(p, str) for p in paths):
            raise HTTPError(400, "'paths' must be a non-empty string array")
        batched = True
    elif "path" in doc:
        if not isinstance(doc["path"], str):
            raise HTTPError(400, "'path' must be a string")
        paths = [doc["path"]]
        batched = False
    else:
        raise HTTPError(400, "request needs 'path' or 'paths'")
    results = []
    for path in paths:
        codebase = Codebase.from_directory(path)
        if len(codebase) == 0:
            raise HTTPError(
                400, f"no recognised source files under {path!r}")
        # Extraction concurrency is the server's business: the threaded
        # tier serialises behind its engine lock, the async tier checks
        # an engine out of its pool. Either way the request's
        # thread-bound trace ID rides into the extraction (and any
        # worker process it runs in).
        try:
            row = app.analyze_one(codebase, include_dynamic=dynamic)
        except PoolSaturated as exc:
            ctx.shed = True
            raise HTTPError(
                503, str(exc),
                headers=[("Retry-After", str(exc.retry_after))])
        except ExtractionError as exc:
            raise HTTPError(500, f"extraction failed — {exc}")
        results.append(analysis_payload(codebase, row, model))
    if not batched:
        return _json_response(200, results[0])
    return _json_response(200, {"results": results})


def _handle_gate(app, doc: dict, ctx: RequestContext) -> Response:
    """``POST /gate``: risk-delta judgement between two tree specs.

    Body: ``{"base": SPEC, "head": SPEC}`` plus optional ``"model"``
    (omitted → the feature risk proxy, like ``gate --features-only``),
    ``"threshold"`` (default: the gate module's), and ``"seed"`` (for
    ``synth:NAME@K`` specs). The response is the canonical gate payload
    — byte-identical to ``repro gate --json`` for the same inputs,
    because both go through :func:`~repro.gate.report.gate_payload` and
    :func:`~repro.serve.payloads.dump_payload`. A breach is still a 200
    (the *judgement* is the payload's ``breach`` field; HTTP status
    codes stay about the request itself).
    """
    # Imported lazily: repro.gate.report imports this package's
    # payloads module, so a module-level import here would be circular.
    from repro.gate import (
        DEFAULT_THRESHOLD,
        build_gate_report,
        gate_payload,
        resolve_tree,
    )

    model, _ = _select_model(ctx, doc, required=False)
    threshold = doc.get("threshold", DEFAULT_THRESHOLD)
    if isinstance(threshold, bool) \
            or not isinstance(threshold, (int, float)) \
            or threshold != threshold or threshold in (
                float("inf"), float("-inf")):
        raise HTTPError(400, "'threshold' must be a finite number")
    seed = doc.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise HTTPError(400, "'seed' must be an integer")
    base_spec = doc.get("base")
    head_spec = doc.get("head")
    if not isinstance(base_spec, str) or not isinstance(head_spec, str):
        raise HTTPError(
            400, "request needs string 'base' and 'head' tree specs "
                 "(a directory path or synth:NAME@K)")
    try:
        base = resolve_tree(base_spec, seed=seed, allow_empty=True)
        head = resolve_tree(head_spec, seed=seed, allow_empty=True)
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, str(exc))
    if len(head) == 0:
        # An empty *base* means "everything is new" and gates fine; an
        # empty head means there is nothing to assess.
        raise HTTPError(
            400, f"no recognised source files under head tree "
                 f"{head_spec!r}")
    try:
        if len(base) == 0:
            row_base: Dict[str, float] = {}
            records_base: List[dict] = []
        else:
            row_base, records_base = app.analyze_records(base)
        row_head, records_head = app.analyze_records(head)
    except PoolSaturated as exc:
        ctx.shed = True
        raise HTTPError(
            503, str(exc),
            headers=[("Retry-After", str(exc.retry_after))])
    except ExtractionError as exc:
        raise HTTPError(500, f"extraction failed — {exc}")
    report = build_gate_report(
        base, head, row_base, records_base, row_head, records_head,
        model=model, threshold=float(threshold))
    return _json_response(200, gate_payload(report))


_HANDLERS = {
    "/healthz": _handle_healthz,
    "/metricz": _handle_metricz,
    "/predict": _handle_predict,
    "/analyze": _handle_analyze,
    "/gate": _handle_gate,
    "/models": _handle_models,
}


def handle_request(app, method: str, path: str, body: bytes,
                   headers: Optional[Dict[str, str]] = None) -> Response:
    """Route one request and record its telemetry.

    ``app`` is the owning :class:`~repro.serve.server.PredictionServer`
    (store, engine + lock, batcher, timeouts). ``headers`` is the
    inbound header map (case-insensitive; used for ``traceparent``
    propagation and ``/metricz`` content negotiation). Never raises:
    every failure mode becomes a JSON error response with the right
    status.
    """
    endpoint = path.split("?", 1)[0].rstrip("/") or "/"
    started = perf_counter()
    header_map = {key.lower(): value
                  for key, value in (headers or {}).items()}
    trace_id = (parse_traceparent(header_map.get("traceparent", ""))
                or new_trace_id())
    # One store snapshot per request: a concurrent blue/green model
    # swap must never be observable *within* a single response.
    ctx = RequestContext(headers=header_map, trace_id=trace_id,
                         method=method, store=app.store)
    obs.incr("serve.requests")
    with trace_scope(trace_id):
        with obs.span("serve.request", method=method,
                      endpoint=endpoint) as request_span:
            try:
                allowed = ROUTES.get(endpoint)
                if allowed is None:
                    raise HTTPError(404, f"no such endpoint: {endpoint}")
                if method not in allowed:
                    raise HTTPError(
                        405,
                        f"{endpoint} only accepts {', '.join(allowed)}",
                        headers=[("Allow", ", ".join(allowed))])
                doc = _parse_body(body) if method == "POST" else None
                response = _HANDLERS[endpoint](app, doc, ctx)
            except HTTPError as exc:
                response = _json_response(
                    exc.status, {"error": str(exc)}, headers=exc.headers)
            except Exception as exc:
                # the daemon must never crash on a request
                response = _json_response(
                    500,
                    {"error":
                     f"internal error: {type(exc).__name__}: {exc}"})
            request_span.set_attr("status", response.status)
    duration = perf_counter() - started
    # Unknown paths share one histogram so request noise cannot mint
    # unbounded metric names.
    label = endpoint.strip("/") if endpoint in ROUTES else "unknown"
    obs.observe(f"serve.{label}.seconds", duration)
    if response.status >= 400:
        obs.incr("serve.errors")
        obs.incr(f"serve.errors.{response.status}")
    response.headers.append(("X-Trace-Id", trace_id))
    # With tracing live the request span's real ID goes in the
    # parent-id field; disabled, any nonzero filler keeps the header
    # spec-valid (an all-zero parent-id must be rejected by parsers).
    span_id = getattr(request_span, "span_id", None) or 1
    response.headers.append(
        ("traceparent", format_traceparent(trace_id, span_id)))
    access_log = getattr(app, "access_log", None)
    if access_log is not None:
        access_log.log(
            method=method,
            path=endpoint,
            status=response.status,
            duration_ms=round(duration * 1e3, 3),
            trace_id=trace_id,
            batch_size=ctx.batch_size,
            shed=ctx.shed,
        )
    return response
