"""Finding model shared by all bug-finding tools.

§4.2 of the paper proposes feeding "the bug reports or count of bug types
into the machine learning engine" so that noisy, high-false-positive tools
still contribute signal. Every checker in this package therefore emits
uniform :class:`Finding` records that the meta-tool and the feature
testbed can count and classify.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List

from repro.lang.sourcefile import SourceFile


class Severity(enum.IntEnum):
    """Severity scale used by the checkers (ordered, comparable)."""

    INFO = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4


@dataclass(frozen=True)
class Finding:
    """One report from one checker."""

    tool: str
    rule: str
    path: str
    line: int
    severity: Severity
    message: str
    cwe: int = 0  # associated CWE id when the rule maps to one, else 0

    def key(self) -> tuple:
        """Deduplication key: same defect reported by different tools."""
        return (self.path, self.line, self.cwe or self.rule)


#: A checker maps one source file to a list of findings.
Checker = Callable[[SourceFile], List[Finding]]
