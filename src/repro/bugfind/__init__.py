"""Bug-finding substrate: lint-style tools whose outputs become features."""

from repro.bugfind import c_checkers, generic_checkers, meta
from repro.bugfind.findings import Checker, Finding, Severity
from repro.bugfind.meta import TOOLS, MetaReport, run_all

__all__ = [
    "Checker",
    "Finding",
    "MetaReport",
    "Severity",
    "TOOLS",
    "c_checkers",
    "generic_checkers",
    "meta",
    "run_all",
]
