"""Language-generic security checkers (after PMD [11], FindBugs [40]).

These run on every language and encode cross-language "code smell meets
security" rules: hardcoded secrets, dynamic code evaluation, SQL string
building, weak cryptography, overly permissive file modes, and swallowed
exceptions.
"""

from __future__ import annotations

from typing import List

from repro.bugfind.findings import Finding, Severity
from repro.lang.sourcefile import SourceFile
from repro.lang.tokens import Token, TokenKind

TOOL = "genlint"

_SECRET_NAMES = frozenset(
    {"password", "passwd", "pwd", "secret", "api_key", "apikey", "token",
     "private_key", "auth"}
)

_EVAL_FUNCS = frozenset({"eval", "exec", "execfile", "compile"})

_WEAK_CRYPTO = frozenset({"md5", "sha1", "des", "rc4", "ecb", "md4"})

_SQL_VERBS = ("select ", "insert ", "update ", "delete ", "drop ")


def _code_tokens(source: SourceFile) -> List[Token]:
    return [t for t in source.tokens if t.is_code()]


def check_hardcoded_secret(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-798: a secret-named variable assigned a string literal."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    for i in range(len(tokens) - 2):
        tok = tokens[i]
        if tok.kind != TokenKind.IDENT:
            continue
        if tok.text.lower() not in _SECRET_NAMES:
            continue
        if tokens[i + 1].text != "=":
            continue
        value = tokens[i + 2]
        if value.kind == TokenKind.STRING and len(value.text) > 4:
            findings.append(
                Finding(TOOL, "hardcoded-secret", source.path, tok.line,
                        Severity.HIGH,
                        f"{tok.text!r} assigned a literal secret", cwe=798)
            )
    return findings


def check_dynamic_eval(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-95: eval/exec of a non-literal expression."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    for i in range(len(tokens) - 2):
        tok = tokens[i]
        if tok.kind != TokenKind.IDENT or tok.text not in _EVAL_FUNCS:
            continue
        if tokens[i + 1].text != "(":
            continue
        arg = tokens[i + 2]
        if arg.kind != TokenKind.STRING:
            findings.append(
                Finding(TOOL, "dynamic-eval", source.path, tok.line,
                        Severity.CRITICAL,
                        f"{tok.text}() evaluates a dynamic expression", cwe=95)
            )
    return findings


def check_sql_concatenation(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-89: SQL text concatenated with a variable."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.STRING:
            continue
        lowered = tok.text.lower()
        if not any(verb in lowered for verb in _SQL_VERBS):
            continue
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        after = tokens[i + 2] if i + 2 < len(tokens) else None
        if nxt is not None and nxt.text == "+" and after is not None \
                and after.kind == TokenKind.IDENT:
            findings.append(
                Finding(TOOL, "sql-concatenation", source.path, tok.line,
                        Severity.HIGH,
                        "SQL statement built by string concatenation", cwe=89)
            )
    return findings


def check_weak_crypto(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-327: use of a broken or risky cryptographic primitive."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    for tok in tokens:
        if tok.kind not in (TokenKind.IDENT, TokenKind.STRING):
            continue
        lowered = tok.text.lower().strip("\"'")
        if lowered in _WEAK_CRYPTO:
            findings.append(
                Finding(TOOL, "weak-crypto", source.path, tok.line,
                        Severity.MEDIUM,
                        f"{lowered.upper()} is cryptographically broken",
                        cwe=327)
            )
    return findings


def check_permissive_mode(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-732: chmod/open with a world-writable mode literal."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.IDENT or tok.text not in ("chmod", "open",
                                                           "umask", "mkdir"):
            continue
        window = tokens[i : i + 10]
        for w in window:
            if w.kind == TokenKind.NUMBER and w.text in ("0777", "0o777",
                                                         "777", "0666",
                                                         "0o666"):
                findings.append(
                    Finding(TOOL, "permissive-mode", source.path, tok.line,
                            Severity.MEDIUM,
                            f"{tok.text}() with world-writable mode {w.text}",
                            cwe=732)
                )
                break
    return findings


def check_swallowed_exception(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-390: catch/except block whose body is empty or only `pass`."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.KEYWORD or tok.text not in ("catch", "except"):
            continue
        # Find the block opener then check for an empty body.
        j = i + 1
        depth = 0
        while j < len(tokens) and tokens[j].text not in ("{", ":"):
            if tokens[j].text == "(":
                depth += 1
            elif tokens[j].text == ")":
                depth -= 1
            j += 1
        if j >= len(tokens):
            continue
        if tokens[j].text == "{":
            if j + 1 < len(tokens) and tokens[j + 1].text == "}":
                findings.append(
                    Finding(TOOL, "swallowed-exception", source.path, tok.line,
                            Severity.LOW, "empty catch block", cwe=390)
                )
        else:  # Python ':'
            if j + 1 < len(tokens) and tokens[j + 1].text == "pass":
                findings.append(
                    Finding(TOOL, "swallowed-exception", source.path, tok.line,
                            Severity.LOW, "except clause only passes", cwe=390)
                )
    return findings


_DESERIAL_FUNCS = frozenset({"loads", "load", "readObject", "unserialize"})
_DESERIAL_MODULES = frozenset({"pickle", "marshal", "yaml", "shelve"})


def check_unsafe_deserialization(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-502: deserialising with pickle/yaml.load/readObject."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    for i in range(len(tokens) - 2):
        tok = tokens[i]
        if tok.kind != TokenKind.IDENT:
            continue
        # module.load(...) style (pickle.loads, yaml.load, ...).
        if (
            tok.text in _DESERIAL_MODULES
            and tokens[i + 1].text == "."
            and tokens[i + 2].text in _DESERIAL_FUNCS
        ):
            if tok.text == "yaml" and "safe" in tokens[i + 2].text:
                continue
            findings.append(
                Finding(TOOL, "unsafe-deserialization", source.path, tok.line,
                        Severity.HIGH,
                        f"{tok.text}.{tokens[i + 2].text}() deserialises "
                        "untrusted data", cwe=502)
            )
        # Java readObject().
        if tok.text == "readObject" and tokens[i + 1].text == "(":
            findings.append(
                Finding(TOOL, "unsafe-deserialization", source.path, tok.line,
                        Severity.HIGH, "readObject() deserialises untrusted "
                        "data", cwe=502)
            )
    return findings


def check_insecure_tempfile(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-377: predictable temporary files (mktemp, tmpnam, /tmp paths)."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    for i, tok in enumerate(tokens):
        if tok.kind == TokenKind.IDENT and tok.text in ("mktemp", "tmpnam",
                                                        "tempnam"):
            if i + 1 < len(tokens) and tokens[i + 1].text == "(":
                findings.append(
                    Finding(TOOL, "insecure-tempfile", source.path, tok.line,
                            Severity.MEDIUM,
                            f"{tok.text}() creates a predictable temp path",
                            cwe=377)
                )
        if tok.kind == TokenKind.STRING and "/tmp/" in tok.text:
            findings.append(
                Finding(TOOL, "insecure-tempfile", source.path, tok.line,
                        Severity.LOW,
                        "hardcoded /tmp path invites symlink races", cwe=377)
            )
    return findings


def check_assert_validation(source: SourceFile, tokens=None) -> List[Finding]:
    """CWE-617: input validation via assert (stripped with -O)."""
    if source.spec.name != "python":
        return []
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    input_names = {"request", "input", "arg", "args", "param", "params",
                   "data", "payload", "user"}
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.KEYWORD or tok.text != "assert":
            continue
        window = {t.text.lower() for t in tokens[i + 1 : i + 8]
                  if t.kind == TokenKind.IDENT}
        if window & input_names:
            findings.append(
                Finding(TOOL, "assert-validation", source.path, tok.line,
                        Severity.MEDIUM,
                        "assert validates external input but vanishes "
                        "under -O", cwe=617)
            )
    return findings


GENERIC_CHECKERS = (
    check_hardcoded_secret,
    check_dynamic_eval,
    check_sql_concatenation,
    check_weak_crypto,
    check_permissive_mode,
    check_swallowed_exception,
    check_unsafe_deserialization,
    check_insecure_tempfile,
    check_assert_validation,
)


_PERMISSIVE_CALLS = frozenset({"chmod", "open", "umask", "mkdir"})
_PERMISSIVE_MODES = frozenset({"0777", "0o777", "777", "0666", "0o666"})
_TEMPFILE_FUNCS = frozenset({"mktemp", "tmpnam", "tempnam"})
_ASSERT_INPUT_NAMES = frozenset(
    {"request", "input", "arg", "args", "param", "params", "data",
     "payload", "user"}
)


def run(source: SourceFile, *, code_tokens=None, functions=None,
        call_sites=None) -> List[Finding]:
    """Run every generic checker over one file.

    ``code_tokens`` lets the analysis artifact supply its cached filtered
    stream (otherwise the checkers filter for themselves); ``functions``
    and ``call_sites`` are part of the shared tool signature but unused
    here.

    The individual ``check_*`` functions each walk the whole token list;
    nine walks per file is real cost on the extraction hot path, so this
    entry point runs all of their rules in one kind-dispatched pass.
    The final sort on ``(line, rule)`` makes the fused order identical
    to the checker-by-checker order: ties share a rule, and within one
    rule both variants emit in token order.
    """
    del functions, call_sites  # accepted for the common tool signature
    tokens = code_tokens if code_tokens is not None else _code_tokens(source)
    n = len(tokens)
    is_python = source.spec.name == "python"
    path = source.path
    ident = TokenKind.IDENT
    string = TokenKind.STRING
    keyword = TokenKind.KEYWORD
    number = TokenKind.NUMBER
    findings: List[Finding] = []
    append = findings.append
    for i, tok in enumerate(tokens):
        kind = tok.kind
        if kind is ident:
            text = tok.text
            lowered = text.lower()
            if (lowered in _SECRET_NAMES and i < n - 2
                    and tokens[i + 1].text == "="):
                value = tokens[i + 2]
                if value.kind is string and len(value.text) > 4:
                    append(Finding(
                        TOOL, "hardcoded-secret", path, tok.line,
                        Severity.HIGH,
                        f"{text!r} assigned a literal secret", cwe=798))
            if (text in _EVAL_FUNCS and i < n - 2
                    and tokens[i + 1].text == "("
                    and tokens[i + 2].kind is not string):
                append(Finding(
                    TOOL, "dynamic-eval", path, tok.line,
                    Severity.CRITICAL,
                    f"{text}() evaluates a dynamic expression", cwe=95))
            if lowered in _WEAK_CRYPTO:
                append(Finding(
                    TOOL, "weak-crypto", path, tok.line, Severity.MEDIUM,
                    f"{lowered.upper()} is cryptographically broken",
                    cwe=327))
            if text in _PERMISSIVE_CALLS:
                for w in tokens[i:i + 10]:
                    if w.kind is number and w.text in _PERMISSIVE_MODES:
                        append(Finding(
                            TOOL, "permissive-mode", path, tok.line,
                            Severity.MEDIUM,
                            f"{text}() with world-writable mode {w.text}",
                            cwe=732))
                        break
            if i < n - 2:
                if (text in _DESERIAL_MODULES
                        and tokens[i + 1].text == "."
                        and tokens[i + 2].text in _DESERIAL_FUNCS
                        and not (text == "yaml"
                                 and "safe" in tokens[i + 2].text)):
                    append(Finding(
                        TOOL, "unsafe-deserialization", path, tok.line,
                        Severity.HIGH,
                        f"{text}.{tokens[i + 2].text}() deserialises "
                        "untrusted data", cwe=502))
                if text == "readObject" and tokens[i + 1].text == "(":
                    append(Finding(
                        TOOL, "unsafe-deserialization", path, tok.line,
                        Severity.HIGH,
                        "readObject() deserialises untrusted data",
                        cwe=502))
            if (text in _TEMPFILE_FUNCS and i + 1 < n
                    and tokens[i + 1].text == "("):
                append(Finding(
                    TOOL, "insecure-tempfile", path, tok.line,
                    Severity.MEDIUM,
                    f"{text}() creates a predictable temp path", cwe=377))
        elif kind is string:
            text = tok.text
            lowered = text.lower()
            if any(verb in lowered for verb in _SQL_VERBS):
                nxt = tokens[i + 1] if i + 1 < n else None
                after = tokens[i + 2] if i + 2 < n else None
                if (nxt is not None and nxt.text == "+"
                        and after is not None and after.kind is ident):
                    append(Finding(
                        TOOL, "sql-concatenation", path, tok.line,
                        Severity.HIGH,
                        "SQL statement built by string concatenation",
                        cwe=89))
            stripped = lowered.strip("\"'")
            if stripped in _WEAK_CRYPTO:
                append(Finding(
                    TOOL, "weak-crypto", path, tok.line, Severity.MEDIUM,
                    f"{stripped.upper()} is cryptographically broken",
                    cwe=327))
            if "/tmp/" in text:
                append(Finding(
                    TOOL, "insecure-tempfile", path, tok.line,
                    Severity.LOW,
                    "hardcoded /tmp path invites symlink races", cwe=377))
        elif kind is keyword:
            text = tok.text
            if text in ("catch", "except"):
                j = i + 1
                while j < n and tokens[j].text not in ("{", ":"):
                    j += 1
                if j < n:
                    if tokens[j].text == "{":
                        if j + 1 < n and tokens[j + 1].text == "}":
                            append(Finding(
                                TOOL, "swallowed-exception", path, tok.line,
                                Severity.LOW, "empty catch block", cwe=390))
                    elif j + 1 < n and tokens[j + 1].text == "pass":
                        append(Finding(
                            TOOL, "swallowed-exception", path, tok.line,
                            Severity.LOW, "except clause only passes",
                            cwe=390))
            elif is_python and text == "assert":
                window = {t.text.lower() for t in tokens[i + 1:i + 8]
                          if t.kind is ident}
                if window & _ASSERT_INPUT_NAMES:
                    append(Finding(
                        TOOL, "assert-validation", path, tok.line,
                        Severity.MEDIUM,
                        "assert validates external input but vanishes "
                        "under -O", cwe=617))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings
