"""Meta-tool that combines bug-finding tools (after Rutar et al. [59]).

Rutar et al. compared Java bug finders and built a meta-tool over their
union; Zeng [69] used machine learning to combine three of them. This
module runs every registered tool over a codebase, deduplicates findings
that point at the same defect, and summarises per-tool/per-rule/per-CWE
counts in the exact shape the feature testbed consumes (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro import obs
from repro.bugfind import c_checkers, generic_checkers, lifecycle_checkers
from repro.bugfind.findings import Finding, Severity
from repro.lang.sourcefile import Codebase, SourceFile

#: The registered tools, by name. Each maps a file to findings, and must
#: accept keyword-only ``code_tokens``/``functions`` (ignoring whichever it
#: does not need) so the analysis artifact's cached views can be passed in.
TOOLS: Dict[str, Callable[..., List[Finding]]] = {
    c_checkers.TOOL: c_checkers.run,
    generic_checkers.TOOL: generic_checkers.run,
    lifecycle_checkers.TOOL: lifecycle_checkers.run,
}


@dataclass(frozen=True)
class MetaReport:
    """Combined multi-tool report over one codebase."""

    findings: Tuple[Finding, ...]
    per_tool: Dict[str, int]
    per_rule: Dict[str, int]
    per_cwe: Dict[int, int]
    per_severity: Dict[Severity, int]
    duplicates_removed: int

    @property
    def total(self) -> int:
        return len(self.findings)

    def count_at_least(self, severity: Severity) -> int:
        """Findings at or above ``severity``."""
        return sum(1 for f in self.findings if f.severity >= severity)


def run_all(codebase: Codebase) -> MetaReport:
    """Run every registered tool over ``codebase`` and merge the output.

    Findings with the same deduplication key (path, line, CWE-or-rule) are
    collapsed to the most severe instance, mirroring Rutar's observation
    that tools overlap heavily on real defects.

    Each tool runs under a ``bugfind.<tool>`` tracing span. The tool-major
    loop order is equivalent to a file-major one for deduplication: the
    key pins (path, line), so candidates for any key still arrive in
    registry order for that file.
    """
    raw: List[Finding] = []
    with obs.span("bugfind.run_all", files=len(codebase)):
        for name, tool in TOOLS.items():
            with obs.span(f"bugfind.{name}"):
                for source in codebase:
                    raw.extend(tool(source))

    merged: Dict[tuple, Finding] = {}
    for finding in raw:
        key = finding.key()
        existing = merged.get(key)
        if existing is None or finding.severity > existing.severity:
            merged[key] = finding
    findings = tuple(
        sorted(merged.values(), key=lambda f: (f.path, f.line, f.rule))
    )
    obs.incr("bugfind.findings", len(findings))
    obs.incr("bugfind.duplicates_removed", len(raw) - len(findings))

    per_tool: Dict[str, int] = {name: 0 for name in TOOLS}
    per_rule: Dict[str, int] = {}
    per_cwe: Dict[int, int] = {}
    per_severity: Dict[Severity, int] = {s: 0 for s in Severity}
    for finding in findings:
        per_tool[finding.tool] = per_tool.get(finding.tool, 0) + 1
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
        if finding.cwe:
            per_cwe[finding.cwe] = per_cwe.get(finding.cwe, 0) + 1
        per_severity[finding.severity] += 1

    return MetaReport(
        findings=findings,
        per_tool=per_tool,
        per_rule=per_rule,
        per_cwe=per_cwe,
        per_severity=per_severity,
        duplicates_removed=len(raw) - len(findings),
    )


def file_summary(
    source: SourceFile, code_tokens=None, functions=None, call_sites=None
) -> Dict[str, object]:
    """All-integer bug-finding summary for one file (JSON-ready).

    The feature testbed only consumes order-independent aggregates of a
    :class:`MetaReport` — totals, severity tallies, per-rule and per-CWE
    counts — and the deduplication key pins ``(path, line)``, so global
    dedup partitions exactly by file. That makes this per-file summary
    mergeable: summing the dicts over all files reproduces the numbers
    :func:`run_all` computes over the whole tree. Deliberately span- and
    counter-free; the extraction layer owns instrumentation. CWE and
    severity keys are stored as strings so the record round-trips
    through JSON unchanged.
    """
    raw: List[Finding] = []
    for tool in TOOLS.values():
        raw.extend(tool(source, code_tokens=code_tokens, functions=functions,
                        call_sites=call_sites))
    merged: Dict[tuple, Finding] = {}
    for finding in raw:
        key = finding.key()
        existing = merged.get(key)
        if existing is None or finding.severity > existing.severity:
            merged[key] = finding
    per_rule: Dict[str, int] = {}
    per_cwe: Dict[str, int] = {}
    severities: Dict[str, int] = {}
    for finding in merged.values():
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
        if finding.cwe:
            cwe = str(finding.cwe)
            per_cwe[cwe] = per_cwe.get(cwe, 0) + 1
        sev = str(int(finding.severity))
        severities[sev] = severities.get(sev, 0) + 1
    return {
        "total": len(merged),
        "severities": severities,
        "per_rule": per_rule,
        "per_cwe": per_cwe,
        "duplicates_removed": len(raw) - len(merged),
    }
