"""Memory-lifecycle checkers for C/C++ (tool "memlint").

Flow-insensitive but order-aware token patterns over each function body:
double free (CWE-415), use after free (CWE-416), and leaked allocations
(CWE-401, allocation with no reachable free in the same function —
deliberately noisy, like the real tools §4.2 proposes to amortise).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.bugfind.findings import Finding, Severity
from repro.lang.parser import extract_functions
from repro.lang.sourcefile import SourceFile
from repro.lang.tokens import Token, TokenKind

TOOL = "memlint"

_ALLOC = frozenset({"malloc", "calloc", "realloc", "strdup"})


def _events(tokens: List[Token]) -> List[Tuple[str, str, int]]:
    """(kind, variable, line) events: alloc / free / use, in token order."""
    events: List[Tuple[str, str, int]] = []
    n = len(tokens)
    skip: Set[int] = set()
    for i, tok in enumerate(tokens):
        if i in skip or tok.kind != TokenKind.IDENT:
            continue
        nxt = tokens[i + 1] if i + 1 < n else None
        if nxt is not None and nxt.text == "(" and tok.text == "free":
            if i + 2 < n and tokens[i + 2].kind == TokenKind.IDENT:
                events.append(("free", tokens[i + 2].text, tok.line))
                skip.add(i + 2)  # the argument is consumed by the free
            continue
        if nxt is not None and nxt.text == "(" and tok.text in _ALLOC:
            # `p = malloc(...)` — the assigned variable is two back.
            if i >= 2 and tokens[i - 1].text == "=" \
                    and tokens[i - 2].kind == TokenKind.IDENT:
                events.append(("alloc", tokens[i - 2].text, tok.line))
            continue
        if nxt is not None and (
            nxt.text in ("[", "->")
            or (nxt.text == "=" and i + 2 < n and tokens[i + 2].text != "=")
        ):
            kind = "assign" if nxt.text == "=" else "use"
            events.append((kind, tok.text, tok.line))
        elif tok.text not in _ALLOC and tok.text != "free":
            events.append(("read", tok.text, tok.line))
    return events


def check_memory_lifecycle(source: SourceFile, functions=None) -> List[Finding]:
    """Per-function double-free / use-after-free / leak detection.

    ``functions`` lets the analysis artifact supply its cached function
    table instead of re-extracting.
    """
    findings: List[Finding] = []
    if functions is None:
        functions = extract_functions(source)
    for func in functions:
        tokens = func.body_tokens  # already code-filtered by the parser
        freed: Set[str] = set()
        allocated: Dict[str, int] = {}
        for kind, var, line in _events(tokens):
            if kind == "alloc":
                allocated[var] = line
                freed.discard(var)  # realloc-style reuse
            elif kind == "free":
                if var in freed:
                    findings.append(
                        Finding(TOOL, "double-free", source.path, line,
                                Severity.CRITICAL,
                                f"{var!r} freed twice in {func.name}()",
                                cwe=415)
                    )
                freed.add(var)
                allocated.pop(var, None)
            elif kind == "assign":
                freed.discard(var)  # reassignment gives a fresh object
            elif kind in ("use", "read") and var in freed:
                findings.append(
                    Finding(TOOL, "use-after-free", source.path, line,
                            Severity.CRITICAL,
                            f"{var!r} used after free in {func.name}()",
                            cwe=416)
                )
                freed.discard(var)  # one report per free
        for var, line in allocated.items():
            findings.append(
                Finding(TOOL, "memory-leak", source.path, line,
                        Severity.LOW,
                        f"{var!r} allocated in {func.name}() but never "
                        "freed here", cwe=401)
            )
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def run(source: SourceFile, *, code_tokens=None, functions=None,
        call_sites=None) -> List[Finding]:
    """Run the lifecycle checker (C/C++ only).

    ``functions`` lets the analysis artifact supply its cached function
    table; ``code_tokens`` and ``call_sites`` are part of the shared
    tool signature but unused.
    """
    del code_tokens, call_sites  # accepted for the common tool signature
    if source.spec.name not in ("c", "cpp"):
        return []
    return check_memory_lifecycle(source, functions)
