"""Lint-style security checkers for C/C++ (after lint [17], MOPS [25]).

Each checker encodes one "safe programming practice" as a token-pattern
property, the way Chen & Wagner's MOPS encodes safety properties, and maps
its violations to the relevant CWE so the feature testbed can correlate
tool output with CWE-classified vulnerability history.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bugfind.findings import Finding, Severity
from repro.lang.sourcefile import SourceFile
from repro.lang.tokens import Token, TokenKind

TOOL = "clint"

#: Unbounded-copy routines -> stack/heap buffer overflow (CWE-121/120).
_UNBOUNDED_COPY: Dict[str, int] = {
    "gets": 242,
    "strcpy": 121,
    "strcat": 121,
    "sprintf": 121,
    "vsprintf": 121,
    "scanf": 120,
    "stpcpy": 121,
}

_FORMAT_FUNCS = frozenset(
    {"printf", "fprintf", "sprintf", "snprintf", "syslog", "vprintf"}
)

_ALLOC_FUNCS = frozenset({"malloc", "calloc", "realloc", "alloca"})

_EXEC_FUNCS = frozenset({"system", "popen", "execl", "execlp", "execv", "execvp"})

_RACE_PAIRS = (("access", "open"), ("stat", "open"), ("access", "fopen"),
               ("stat", "fopen"))


def _code_tokens(source: SourceFile) -> List[Token]:
    return [t for t in source.tokens if t.is_code()]


def _call_sites(tokens: List[Token]) -> List[int]:
    """Indices of identifier tokens that are call sites (followed by '(')."""
    return [
        i
        for i in range(len(tokens) - 1)
        if tokens[i].kind == TokenKind.IDENT and tokens[i + 1].text == "("
    ]


def check_unbounded_copy(source: SourceFile, tokens=None,
                         call_sites=None) -> List[Finding]:
    """CWE-121/120/242: use of inherently unbounded copy/input routines."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    if call_sites is None:
        call_sites = _call_sites(tokens)
    for i in call_sites:
        name = tokens[i].text
        cwe = _UNBOUNDED_COPY.get(name)
        if cwe is None:
            continue
        severity = Severity.CRITICAL if name == "gets" else Severity.HIGH
        findings.append(
            Finding(TOOL, f"unbounded-copy/{name}", source.path, tokens[i].line,
                    severity, f"{name}() writes without a bound", cwe=cwe)
        )
    return findings


def check_format_string(source: SourceFile, tokens=None,
                        call_sites=None) -> List[Finding]:
    """CWE-134: format function whose format argument is not a literal."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    if call_sites is None:
        call_sites = _call_sites(tokens)
    for i in call_sites:
        name = tokens[i].text
        if name not in _FORMAT_FUNCS:
            continue
        fmt = _format_argument(tokens, i, name)
        if fmt is not None and fmt.kind == TokenKind.IDENT:
            findings.append(
                Finding(TOOL, "format-string", source.path, tokens[i].line,
                        Severity.HIGH,
                        f"{name}() format argument {fmt.text!r} is not a literal",
                        cwe=134)
            )
    return findings


def _format_argument(tokens: List[Token], call_idx: int, name: str) -> Optional[Token]:
    """The token holding the format argument of a format-function call."""
    # printf(fmt, ...): arg 0; fprintf(stream, fmt, ...): arg 1;
    # snprintf(buf, size, fmt, ...): arg 2; syslog(pri, fmt, ...): arg 1.
    position = {"printf": 0, "vprintf": 0, "sprintf": 1, "fprintf": 1,
                "syslog": 1, "snprintf": 2}[name]
    depth = 0
    arg = 0
    for j in range(call_idx + 1, len(tokens)):
        text = tokens[j].text
        if text == "(":
            depth += 1
            continue
        if text == ")":
            depth -= 1
            if depth == 0:
                return None
            continue
        if text == "," and depth == 1:
            arg += 1
            continue
        if depth >= 1 and arg == position:
            return tokens[j]
    return None


def check_unchecked_allocation(source: SourceFile, tokens=None,
                               call_sites=None) -> List[Finding]:
    """CWE-476: allocation result never compared against NULL.

    Flags ``p = malloc(...)`` when no ``p == NULL`` / ``!p`` / ``p != NULL``
    test appears within the rest of the same function-sized window.
    """
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    text_stream = [t.text for t in tokens]
    if call_sites is None:
        call_sites = _call_sites(tokens)
    for i in call_sites:
        if tokens[i].text not in _ALLOC_FUNCS:
            continue
        if i < 2 or tokens[i - 1].text != "=":
            continue
        var = tokens[i - 2]
        if var.kind != TokenKind.IDENT:
            continue
        window = text_stream[i : i + 400]
        checked = False
        for j in range(len(window) - 1):
            a, b = window[j], window[j + 1]
            if (a == var.text and b in ("==", "!=")) or (a == "!" and b == var.text):
                checked = True
                break
            if a in ("if", "while") and b == "(" and var.text in window[j : j + 6]:
                checked = True
                break
        if not checked:
            findings.append(
                Finding(TOOL, "unchecked-allocation", source.path, tokens[i].line,
                        Severity.MEDIUM,
                        f"result of {tokens[i].text}() assigned to "
                        f"{var.text!r} but never NULL-checked", cwe=476)
            )
    return findings


def check_multiplication_in_alloc(source: SourceFile, tokens=None,
                                  call_sites=None) -> List[Finding]:
    """CWE-190: unchecked multiplication inside an allocation size."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    if call_sites is None:
        call_sites = _call_sites(tokens)
    for i in call_sites:
        if tokens[i].text not in ("malloc", "alloca", "realloc"):
            continue
        depth = 0
        for j in range(i + 1, len(tokens)):
            text = tokens[j].text
            if text == "(":
                depth += 1
            elif text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif text == "*" and depth == 1 and tokens[j - 1].text != "(":
                # pointer deref `*p` has '(' or operator before it; size
                # multiplications sit between operands.
                if tokens[j - 1].kind in (TokenKind.IDENT, TokenKind.NUMBER):
                    findings.append(
                        Finding(TOOL, "alloc-size-overflow", source.path,
                                tokens[i].line, Severity.MEDIUM,
                                "multiplication in allocation size may "
                                "overflow", cwe=190)
                    )
                    break
    return findings


def check_command_injection(source: SourceFile, tokens=None,
                            call_sites=None) -> List[Finding]:
    """CWE-78: exec-family call with a non-literal command."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    if call_sites is None:
        call_sites = _call_sites(tokens)
    for i in call_sites:
        if tokens[i].text not in _EXEC_FUNCS:
            continue
        nxt = tokens[i + 2] if i + 2 < len(tokens) else None
        if nxt is not None and nxt.kind != TokenKind.STRING:
            findings.append(
                Finding(TOOL, "command-injection", source.path, tokens[i].line,
                        Severity.CRITICAL,
                        f"{tokens[i].text}() invoked with non-literal command",
                        cwe=78)
            )
    return findings


def check_toctou(source: SourceFile, tokens=None,
                 call_sites=None) -> List[Finding]:
    """CWE-367: check/use race — access()/stat() then open() on any path."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    if call_sites is None:
        call_sites = _call_sites(tokens)
    calls = [(i, tokens[i].text) for i in call_sites]
    for (i, first), (j, second) in zip(calls, calls[1:]):
        if (first, second) in _RACE_PAIRS:
            findings.append(
                Finding(TOOL, "toctou", source.path, tokens[i].line,
                        Severity.MEDIUM,
                        f"{first}() followed by {second}() is a check/use race",
                        cwe=367)
            )
    return findings


def check_weak_random(source: SourceFile, tokens=None,
                      call_sites=None) -> List[Finding]:
    """CWE-338: rand()/random() used where unpredictability matters."""
    findings = []
    if tokens is None:
        tokens = _code_tokens(source)
    security_idents = {"key", "token", "nonce", "seed", "secret", "session",
                       "password", "salt"}
    idents = {t.text.lower() for t in tokens if t.kind == TokenKind.IDENT}
    relevant = bool(idents & security_idents)
    if call_sites is None:
        call_sites = _call_sites(tokens)
    for i in call_sites:
        if tokens[i].text in ("rand", "random", "srand") and relevant:
            findings.append(
                Finding(TOOL, "weak-random", source.path, tokens[i].line,
                        Severity.MEDIUM,
                        f"{tokens[i].text}() is predictable; use a CSPRNG",
                        cwe=338)
            )
    return findings


C_CHECKERS = (
    check_unbounded_copy,
    check_format_string,
    check_unchecked_allocation,
    check_multiplication_in_alloc,
    check_command_injection,
    check_toctou,
    check_weak_random,
)


def run(source: SourceFile, *, code_tokens=None, functions=None,
        call_sites=None) -> List[Finding]:
    """Run every C/C++ checker over one file (no-op for other languages).

    ``code_tokens`` and ``call_sites`` let the analysis artifact supply
    its cached filtered stream and call-site index; ``functions`` is part
    of the shared tool signature but unused.
    """
    del functions  # accepted for the common tool signature
    if source.spec.name not in ("c", "cpp"):
        return []
    findings: List[Finding] = []
    for checker in C_CHECKERS:
        findings.extend(checker(source, code_tokens, call_sites))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings
