"""The stable, documented entry points for using repro as a library.

Six functions cover the paper's workflow end to end — extract features
from a tree, train the security model, load a saved model, assess a
tree against one, and judge the *delta* between two versions of a tree
(the continuous-assessment surface behind ``repro gate``) — plus
:class:`~repro.engine.EngineConfig` for tuning how extraction runs.
They are re-exported at the package root::

    import repro

    row = repro.analyze_tree("path/to/project")
    model = repro.train_model(apps=40)
    assessment = repro.assess_tree("path/to/project", model=model)
    print(assessment.overall_risk)

    report = repro.gate_tree("v1/", "v2/", model=model, threshold=0.02)
    if report.breach:
        raise SystemExit(f"risk up {report.risk_delta:+.3f}")

Every function takes an optional keyword-only ``config``
(:class:`~repro.engine.EngineConfig`) so library callers get the same
parallel, cache-aware, incremental extraction path the CLI flags
configure — including the shared-cache backends::

    config = repro.EngineConfig(cache_dir="sqlite:/shared/repro.db")
    row = repro.analyze_tree("path/to/project", config=config)

``cache_dir`` takes the same URI-style spec as ``--cache-dir``: a
directory path for the default filesystem layout, ``sqlite:PATH`` for
one WAL-mode SQLite cache that any number of concurrent processes can
share warm. Deep imports (``repro.core.features`` and friends) keep
working; this module is the surface that will not churn underneath you.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.model import RiskAssessment, SecurityModel
from repro.core.pipeline import TrainingResult
from repro.core.pipeline import train as _train_pipeline
from repro.engine import EngineConfig
from repro.gate import GateReport, assess_delta, gate_tree
from repro.lang import Codebase
from repro.serve.modelstore import load_model
from repro.synth import build_corpus

__all__ = [
    "GateReport",
    "analyze_tree",
    "assess_delta",
    "assess_tree",
    "gate_tree",
    "load_model",
    "train_model",
]


def _as_codebase(tree: Union[str, Codebase]) -> Codebase:
    if isinstance(tree, Codebase):
        return tree
    codebase = Codebase.from_directory(tree)
    if len(codebase) == 0:
        raise ValueError(f"no recognised source files under {tree!r}")
    return codebase


def analyze_tree(
    tree: Union[str, Codebase],
    *,
    include_dynamic: bool = False,
    config: Optional[EngineConfig] = None,
) -> Dict[str, float]:
    """Extract the full feature row for one source tree.

    ``tree`` is a directory path (every recognised source file under it
    is loaded) or an already-built :class:`~repro.lang.Codebase`. The
    returned dict maps feature name to value in the testbed's canonical
    order — byte-identical whether it was computed cold, replayed from
    the feature cache, or incrementally merged from per-file records.

    Raises :class:`~repro.engine.ExtractionError` if extraction fails
    and ``ValueError`` if the tree holds no recognised source files.
    """
    engine = (config or EngineConfig()).build()
    return engine.extract_one(_as_codebase(tree),
                              include_dynamic=include_dynamic)


def train_model(
    *,
    seed: int = 42,
    apps: int = 40,
    folds: int = 5,
    config: Optional[EngineConfig] = None,
    full_result: bool = False,
) -> Union[SecurityModel, TrainingResult]:
    """Train the security model on the calibrated synthetic corpus.

    Builds the ``apps``-application corpus for ``seed``, extracts the
    feature table through the configured engine, and cross-validates
    with ``folds`` folds — the library form of ``repro train``. Returns
    the deployable :class:`~repro.core.SecurityModel`; pass
    ``full_result=True`` for the whole
    :class:`~repro.core.pipeline.TrainingResult` (CV metrics, feature
    table, per-app extraction failures).

    Under the default failure policy an extraction error propagates;
    with ``config.on_error`` set to ``"skip"`` or ``"retry"``, failed
    applications are dropped from the corpus and recorded on
    ``TrainingResult.table.failures``.
    """
    engine = (config or EngineConfig()).build()
    corpus = build_corpus(seed=seed, limit=apps, workers=engine.workers)
    result = _train_pipeline(corpus, k=folds, seed=seed, engine=engine)
    return result if full_result else result.model


def assess_tree(
    tree: Union[str, Codebase],
    *,
    model: Union[str, SecurityModel],
    config: Optional[EngineConfig] = None,
) -> RiskAssessment:
    """Predict the paper's hypotheses for one source tree.

    ``model`` is a :class:`~repro.core.SecurityModel` or a path to a
    bundle saved by ``repro train`` (loaded via :func:`load_model`).
    Returns the :class:`~repro.core.RiskAssessment` with per-hypothesis
    probabilities/estimates and the blended ``overall_risk``.
    """
    if isinstance(model, str):
        model = load_model(model)
    return model.assess(analyze_tree(tree, config=config))
