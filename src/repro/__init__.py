"""Clairvoyant: an empirical, ML-based software (in)security metric.

Reproduction of "A Clairvoyant Approach to Evaluating Software
(In)Security" (Jain, Tsai, Porter — HotOS '17). The package is organised
as the paper's Figure 4 pipeline:

- :mod:`repro.lang` — lexing and structural recovery (C/C++/Java/Python)
- :mod:`repro.analysis` — static-analysis metric extractors (the testbed's
  tools: LoC, McCabe, Halstead, CFG/dataflow, call graphs, smells, churn)
- :mod:`repro.surface` — attack-surface metrics (RASQ, attack graphs)
- :mod:`repro.bugfind` — bug-finding tools whose outputs become features
- :mod:`repro.cve` — CVE database, CVSS v3 scoring, CWE taxonomy
- :mod:`repro.ml` — the Weka-equivalent learning engine
- :mod:`repro.stats` — regression/correlation used by the measurement study
- :mod:`repro.synth` — calibrated synthetic corpus (apps, CVE histories,
  commit histories, paper survey)
- :mod:`repro.core` — the paper's contribution: feature testbed, CVE
  hypotheses, training pipeline, trained model, developer-facing evaluator
- :mod:`repro.engine` — parallel, cache-aware execution layer for
  corpus-scale feature extraction
- :mod:`repro.obs` — tracing spans, metrics, and run reports

The supported library surface is the handful of names re-exported here
(see ``__all__``), chiefly the :mod:`repro.api` entry points::

    import repro

    row = repro.analyze_tree("path/to/project")
    model = repro.train_model(apps=40)
    assessment = repro.assess_tree("path/to/project", model=model)

Deep imports keep working, but only the root names carry a stability
promise.
"""

__version__ = "1.0.0"


def package_version() -> str:
    """The installed distribution version, or the module fallback.

    Prefers package metadata (`pip install -e .` keeps it current with
    pyproject.toml); a source-tree run via ``PYTHONPATH=src`` has no
    installed distribution, so the module constant stands in. The CLI's
    ``--version`` flag and the serving layer's ``/healthz`` build
    identity both come from here.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8 only
        return __version__
    try:
        return version("repro")
    except PackageNotFoundError:
        return __version__


from repro import (
    analysis, bugfind, core, cve, engine, lang, ml, stats, surface, synth,
)
from repro.engine import EngineConfig, ExtractionEngine, FeatureCache
from repro.core import (
    ChangeEvaluator,
    RiskAssessment,
    SecurityModel,
    extract_features,
    train,
)
from repro.lang import Codebase, SourceFile
from repro.synth import build_corpus
from repro.api import (
    GateReport,
    analyze_tree,
    assess_delta,
    assess_tree,
    gate_tree,
    load_model,
    train_model,
)

__all__ = [
    "ChangeEvaluator",
    "Codebase",
    "EngineConfig",
    "ExtractionEngine",
    "FeatureCache",
    "GateReport",
    "RiskAssessment",
    "SecurityModel",
    "SourceFile",
    "analysis",
    "analyze_tree",
    "assess_delta",
    "assess_tree",
    "bugfind",
    "build_corpus",
    "core",
    "cve",
    "engine",
    "extract_features",
    "gate_tree",
    "lang",
    "load_model",
    "ml",
    "package_version",
    "stats",
    "surface",
    "synth",
    "train",
    "train_model",
]
