"""The trained security model (the output of Figure 4's training phase).

A :class:`SecurityModel` bundles, per hypothesis, a fitted estimator plus
the shared feature scaler. §5.3 drives the API:

- ``assess`` turns a feature row into predicted probabilities/estimates —
  "the classifier can give the developer an evaluation";
- ``top_properties`` exposes the trained weights — "each weight in the
  trained model shows the importance of the corresponding code property";
- ``flagged_properties`` names the properties that push one application's
  risk up — "properties that heavily contribute to a given result can be
  flagged for developer attention".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hypotheses import (
    KIND_CLASSIFICATION,
    KIND_REGRESSION,
    Hypothesis,
)
from repro.ml.base import Classifier, Regressor
from repro.ml.preprocess import StandardScaler


@dataclass(frozen=True)
class RiskAssessment:
    """Model output for one application."""

    #: hypothesis id -> probability the answer is "yes" (classification).
    probabilities: Dict[str, float]
    #: hypothesis id -> predicted value (regression; log-count or score).
    estimates: Dict[str, float]

    @property
    def overall_risk(self) -> float:
        """Mean yes-probability over the classification hypotheses.

        A deliberately simple headline number; per-hypothesis values are
        the real deliverable.
        """
        if not self.probabilities:
            return 0.0
        return sum(self.probabilities.values()) / len(self.probabilities)


class SecurityModel:
    """Per-hypothesis estimators over a shared, scaled feature space."""

    #: Bumped whenever the pickled layout changes incompatibly; stamped
    #: on every instance and checked by the CLI when loading a saved
    #: model so stale files fail with a clear message, not an attribute
    #: error deep in prediction.
    FORMAT_VERSION = 1

    def __init__(
        self,
        feature_names: Sequence[str],
        scaler: StandardScaler,
        classifiers: Dict[str, Classifier],
        regressors: Dict[str, Regressor],
        hypotheses: Sequence[Hypothesis],
    ):
        self.format_version = self.FORMAT_VERSION
        self.feature_names: Tuple[str, ...] = tuple(feature_names)
        self._scaler = scaler
        self._classifiers = dict(classifiers)
        self._regressors = dict(regressors)
        self.hypotheses: Tuple[Hypothesis, ...] = tuple(hypotheses)

    # -- prediction ---------------------------------------------------------

    def vectorise(self, features: Dict[str, float]) -> np.ndarray:
        """Align a feature dict to the training columns (missing -> 0)."""
        return np.array(
            [[float(features.get(name, 0.0)) for name in self.feature_names]]
        )

    def assess(self, features: Dict[str, float]) -> RiskAssessment:
        """Predict every hypothesis for one application's feature row."""
        x = self._scaler.apply(self.vectorise(features))
        probabilities: Dict[str, float] = {}
        estimates: Dict[str, float] = {}
        for hyp_id, model in self._classifiers.items():
            proba = model.predict_proba(x)[0]
            classes = list(model.classes_)
            probabilities[hyp_id] = (
                float(proba[classes.index(1)]) if 1 in classes else 0.0
            )
        ranges = {h.hypothesis_id: h.value_range for h in self.hypotheses}
        for hyp_id, model in self._regressors.items():
            lo, hi = ranges.get(hyp_id, (0.0, float("inf")))
            estimates[hyp_id] = min(max(float(model.predict(x)[0]), lo), hi)
        return RiskAssessment(probabilities=probabilities, estimates=estimates)

    # -- introspection -----------------------------------------------------------

    def top_properties(
        self, hypothesis_id: str, k: int = 10
    ) -> List[Tuple[str, float]]:
        """The k most influential features for one hypothesis.

        Logistic/linear models report signed weights; tree ensembles
        report impurity-based importances (always non-negative).
        """
        model = self._classifiers.get(hypothesis_id) or self._regressors.get(
            hypothesis_id
        )
        if model is None:
            raise KeyError(hypothesis_id)
        if hasattr(model, "weights"):
            return model.weights(self.feature_names)[:k]
        importances = getattr(model, "feature_importances_", None)
        if importances is None:
            raise TypeError(
                f"model for {hypothesis_id!r} exposes no weights/importances"
            )
        pairs = list(zip(self.feature_names, importances.tolist()))
        pairs.sort(key=lambda p: (-abs(p[1]), p[0]))
        return pairs[:k]

    def flagged_properties(
        self, features: Dict[str, float], hypothesis_id: str, k: int = 5
    ) -> List[Tuple[str, float]]:
        """Properties pushing *this* application's risk up (§5.3).

        Contribution = standardized feature value x signed weight; only
        positive (risk-increasing) contributions are returned, largest
        first. Falls back to importance x |z| for tree models.
        """
        x = self._scaler.apply(self.vectorise(features))[0]
        ranked = self.top_properties(hypothesis_id, k=len(self.feature_names))
        index = {name: i for i, name in enumerate(self.feature_names)}
        contributions = []
        for name, weight in ranked:
            z = x[index[name]]
            contribution = z * weight
            if contribution > 0:
                contributions.append((name, float(contribution)))
        contributions.sort(key=lambda p: -p[1])
        return contributions[:k]

    # -- metadata --------------------------------------------------------------

    @property
    def classification_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._classifiers))

    @property
    def regression_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(self._regressors))
