"""The testbed: assemble the full code-property feature vector (Figure 4).

"We also need an automated framework to collect all the code properties
from the sample applications" (§5.1). This module runs every analyzer in
the package over an application and emits one flat ``{name: value}``
feature row:

- size and language (LoC, comment ratio, language one-hots, nominal kLoC);
- complexity (McCabe totals and distribution, Halstead suite);
- shape (functions, parameters, declarations, variables, nesting);
- control flow (CFG nodes/edges/branches/paths) and data flow (def-use,
  taint source/sink counts);
- call graph (fan-in/out, reachability);
- attack surface (RASQ channels, attack-graph difficulty);
- bug-finding tool outputs (per-rule and per-severity counts);
- code smells (per-kind counts);
- churn and developer activity, when a commit history is available.

Count features are emitted both raw (over the analysed sample) and as
per-kLoC densities: densities estimate the full application from the
sample, which is what lets the model generalise across sizes.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro import obs
from repro.analysis import (
    callgraph,
    cfg as cfg_mod,
    churn as churn_mod,
    cyclomatic,
    dataflow,
    functions,
    halstead,
    identifiers,
    loc,
    maintainability,
    oo,
    smells,
)
from repro.analysis.churn import CommitHistory
from repro.bugfind import Severity, run_all
from repro.lang.languages import ALL_LANGUAGES
from repro.lang.sourcefile import Codebase
from repro.surface import attack_graph, rasq

#: Feature-name prefixes, in vector order (useful for ablations).
FEATURE_GROUPS = (
    "size", "lang", "complexity", "halstead", "shape", "flow", "calls",
    "surface", "bugs", "smell", "churn", "oo", "dynamic",
)


def extract_features(
    codebase: Codebase,
    nominal_kloc: Optional[float] = None,
    history: Optional[CommitHistory] = None,
    include_dynamic: bool = False,
) -> Dict[str, float]:
    """Extract the full feature row for one application.

    Args:
        codebase: the (possibly sampled) source tree to analyse.
        nominal_kloc: the application's full size in kLoC as cloc would
            report it; defaults to the analysed sample's own size.
        history: optional commit history for churn/developer features.
        include_dynamic: also simulate dynamic traces (§5.3's optional
            improvement; costs roughly another CFG pass per function).

    Returns:
        An ordered-by-name dict of float features; missing analysers never
        occur (every group is always emitted, with zeros where the
        codebase has no relevant constructs).
    """
    with obs.span("testbed.extract_features", app=codebase.name,
                  files=len(codebase)):
        return _extract(codebase, nominal_kloc, history, include_dynamic)


def _extract(
    codebase: Codebase,
    nominal_kloc: Optional[float],
    history: Optional[CommitHistory],
    include_dynamic: bool,
) -> Dict[str, float]:
    row: Dict[str, float] = {}
    obs.incr("testbed.files_analyzed", len(codebase))
    with obs.span("analysis.loc"):
        counts = loc.count_codebase(codebase)
    sample_kloc = max(counts.code / 1000.0, 1e-6)
    kloc = nominal_kloc if nominal_kloc is not None else sample_kloc

    def density(value: float) -> float:
        return value / sample_kloc

    # -- size / language ----------------------------------------------------
    row["size.kloc"] = kloc
    row["size.log_kloc"] = math.log10(max(kloc, 1e-6))
    row["size.sample_loc"] = float(counts.code)
    row["size.comment_ratio"] = counts.comment_ratio
    row["size.blank_ratio"] = counts.blank / max(counts.total, 1)
    row["size.preproc_per_kloc"] = density(counts.preproc)
    primary = codebase.primary_language()
    for spec in ALL_LANGUAGES:
        row[f"lang.{spec.name}"] = 1.0 if primary == spec.name else 0.0

    # -- complexity -----------------------------------------------------------
    with obs.span("analysis.cyclomatic"):
        total_cc = cyclomatic.codebase_complexity(codebase)
        dist = cyclomatic.complexity_distribution(codebase)
    row["complexity.total"] = float(total_cc)
    row["complexity.per_kloc"] = density(total_cc)
    row["complexity.mean_function"] = dist["mean"]
    row["complexity.max_function"] = dist["max"]
    row["complexity.p90_function"] = dist["p90"]
    row["complexity.share_over_10"] = dist["over_10"]

    with obs.span("analysis.halstead"):
        hal = halstead.measure_codebase(codebase)
    row["halstead.volume_per_kloc"] = density(hal.volume)
    with obs.span("analysis.maintainability"):
        mi = maintainability.measure_codebase(codebase)
    row["complexity.maintainability_index"] = mi.mi
    row["halstead.difficulty"] = hal.difficulty
    row["halstead.effort_per_kloc"] = density(hal.effort)
    row["halstead.estimated_bugs_per_kloc"] = density(hal.estimated_bugs)
    row["halstead.vocabulary"] = float(hal.vocabulary)

    # -- shape -----------------------------------------------------------------
    with obs.span("analysis.functions"):
        shape = functions.measure_codebase(codebase)
    row["shape.functions_per_kloc"] = density(shape.n_functions)
    row["shape.public_share"] = (
        shape.n_public_functions / shape.n_functions if shape.n_functions else 0.0
    )
    row["shape.mean_params"] = shape.mean_params
    row["shape.max_params"] = float(shape.max_params)
    row["shape.mean_length"] = shape.mean_length
    row["shape.max_length"] = float(shape.max_length)
    row["shape.mean_nesting"] = shape.mean_nesting
    row["shape.max_nesting"] = float(shape.max_nesting)
    row["shape.declarations_per_kloc"] = density(shape.n_declarations)
    row["shape.variables_per_kloc"] = density(shape.n_variables)
    with obs.span("analysis.identifiers"):
        names = identifiers.measure_codebase(codebase)
    row["shape.identifier_mean_length"] = names.mean_length
    row["shape.identifier_short_fraction"] = names.short_name_fraction
    row["shape.identifier_numeric_suffixes"] = names.numeric_suffix_fraction
    row["shape.identifier_entropy"] = names.entropy

    # -- control / data flow -------------------------------------------------
    with obs.span("analysis.cfg"):
        flow = cfg_mod.measure_codebase(codebase)
    row["flow.cfg_nodes_per_kloc"] = density(flow.n_cfg_nodes)
    row["flow.cfg_edges_per_kloc"] = density(flow.n_cfg_edges)
    row["flow.branch_nodes_per_kloc"] = density(flow.n_branch_nodes)
    row["flow.return_nodes_per_kloc"] = density(flow.n_return_nodes)
    row["flow.mean_cyclomatic"] = flow.mean_cyclomatic
    row["flow.log_paths"] = math.log10(1.0 + flow.total_paths)
    with obs.span("analysis.dataflow"):
        data = dataflow.measure_codebase(codebase)
    row["flow.defs_per_kloc"] = density(data.n_defs)
    row["flow.def_use_per_kloc"] = density(data.def_use_pairs)
    row["flow.max_reaching"] = float(data.max_reaching)
    row["flow.taint_sources"] = float(data.source_sites)
    row["flow.taint_sinks"] = float(data.sink_sites)
    row["flow.tainted_sink_calls"] = float(data.tainted_sink_calls)

    # -- call graph ---------------------------------------------------------------
    with obs.span("analysis.callgraph"):
        calls = callgraph.measure_codebase(codebase)
    row["calls.edges_per_function"] = (
        calls.n_edges / calls.n_functions if calls.n_functions else 0.0
    )
    row["calls.external_per_kloc"] = density(calls.n_external_calls)
    row["calls.max_fan_in"] = float(calls.max_fan_in)
    row["calls.max_fan_out"] = float(calls.max_fan_out)
    row["calls.reachable_fraction"] = calls.reachable_fraction
    row["calls.recursive_cycles"] = float(calls.n_recursive_cycles)

    # -- attack surface ---------------------------------------------------------
    with obs.span("surface.rasq"):
        surface = rasq.measure_codebase(codebase)
    row["surface.rasq_per_kloc"] = density(surface.rasq)
    row["surface.network_facing"] = 1.0 if surface.network_facing else 0.0
    for channel, count in sorted(surface.channel_counts.items()):
        row[f"surface.{channel}_per_kloc"] = density(count)
    row["surface.privilege_sites"] = float(surface.n_privilege_sites)
    with obs.span("surface.attack_graph"):
        graph_metrics = attack_graph.measure_codebase(codebase)
    row["surface.attack_states"] = float(graph_metrics.n_states)
    row["surface.goal_reachable"] = 1.0 if graph_metrics.goal_reachable else 0.0
    row["surface.shortest_attack_path"] = float(
        graph_metrics.shortest_path_length
    )
    row["surface.attack_cost"] = (
        graph_metrics.cheapest_cost
        if math.isfinite(graph_metrics.cheapest_cost)
        else 10.0  # sentinel: unreachable goal is "very costly"
    )

    # -- bug-finding tools -------------------------------------------------------
    with obs.span("analysis.bugfind"):
        report = run_all(codebase)
    row["bugs.total_per_kloc"] = density(report.total)
    row["bugs.high_per_kloc"] = density(report.count_at_least(Severity.HIGH))
    for rule, count in sorted(report.per_rule.items()):
        row[f"bugs.rule.{rule}_per_kloc"] = density(count)
    for cwe_id, count in sorted(report.per_cwe.items()):
        row[f"bugs.cwe.{cwe_id}_per_kloc"] = density(count)

    # -- smells ---------------------------------------------------------------------
    with obs.span("analysis.smells"):
        smell_counts = smells.smell_counts(codebase)
    for kind, count in sorted(smell_counts.items()):
        row[f"smell.{kind}_per_kloc"] = density(count)

    # -- churn / developers -------------------------------------------------------
    if history is not None:
        with obs.span("analysis.churn"):
            churn = churn_mod.churn_metrics(history)
            activity = churn_mod.developer_activity(history)
        row["churn.log_total"] = math.log10(1.0 + churn.total_churn)
        row["churn.relative"] = churn.relative_churn
        row["churn.high_churn_files"] = float(churn.n_high_churn_files)
        row["churn.mean_file"] = churn.mean_file_churn
        row["churn.authors"] = float(activity.n_authors)
        row["churn.commits_per_file"] = (
            activity.n_commits / max(len(history.files), 1)
        )
        row["churn.mean_authors_per_file"] = activity.mean_authors_per_file
        row["churn.network_density"] = activity.network_density
        row["churn.peripheral_authors"] = float(activity.n_peripheral_authors)
    else:
        for name in ("log_total", "relative", "high_churn_files", "mean_file",
                     "authors", "commits_per_file", "mean_authors_per_file",
                     "network_density", "peripheral_authors"):
            row[f"churn.{name}"] = 0.0

    # -- object-oriented design (Alshammari et al.) ----------------------------
    with obs.span("analysis.oo"):
        design = oo.measure_codebase(codebase)
    row["oo.classes_per_kloc"] = density(design.n_classes)
    row["oo.mean_methods_per_class"] = design.mean_methods_per_class
    row["oo.public_method_fraction"] = design.public_method_fraction
    row["oo.public_field_fraction"] = design.public_field_fraction
    row["oo.accessibility"] = design.accessibility
    row["oo.mean_coupling"] = design.mean_coupling
    row["oo.max_inheritance_depth"] = float(design.max_inheritance_depth)

    # -- dynamic traces (optional, §5.3) ---------------------------------------
    if include_dynamic:
        from repro.analysis import dynamic

        with obs.span("analysis.dynamic"):
            traces = dynamic.measure_codebase(codebase)
        row["dynamic.node_coverage"] = traces.mean_node_coverage
        row["dynamic.edge_coverage"] = traces.mean_edge_coverage
        row["dynamic.trace_length"] = traces.mean_trace_length
        row["dynamic.hot_concentration"] = traces.mean_hot_concentration
        row["dynamic.dangerous_exec_per_kloc"] = density(
            traces.dangerous_executions
        )
        row["dynamic.truncation_rate"] = traces.truncation_rate

    return row


def feature_group(name: str) -> str:
    """The group prefix of a feature name (before the first dot)."""
    return name.split(".", 1)[0]
