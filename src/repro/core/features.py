"""The testbed: assemble the full code-property feature vector (Figure 4).

"We also need an automated framework to collect all the code properties
from the sample applications" (§5.1). This module runs every analyzer in
the package over an application and emits one flat ``{name: value}``
feature row:

- size and language (LoC, comment ratio, language one-hots, nominal kLoC);
- complexity (McCabe totals and distribution, Halstead suite);
- shape (functions, parameters, declarations, variables, nesting);
- control flow (CFG nodes/edges/branches/paths) and data flow (def-use,
  taint source/sink counts);
- call graph (fan-in/out, reachability);
- attack surface (RASQ channels, attack-graph difficulty);
- bug-finding tool outputs (per-rule and per-severity counts);
- code smells (per-kind counts);
- churn and developer activity, when a commit history is available.

Count features are emitted both raw (over the analysed sample) and as
per-kLoC densities: densities estimate the full application from the
sample, which is what lets the model generalise across sizes.

Extraction is split into two phases so the engine can cache and replay
it at file granularity:

- a **per-file phase** (:func:`file_record` / the analyzer-major
  :func:`_collect_records`) runs every analyzer that only needs a single
  :class:`~repro.lang.sourcefile.SourceFile` — LoC, cyclomatic,
  Halstead, identifiers, function shape, CFG, dataflow, attack-surface
  channels, bug finding, smells — and captures its output as an
  all-integer, JSON-round-trippable *record*;
- a **merge phase** (:func:`merge_records`) folds the records back
  together with the exact arithmetic a whole-tree pass uses (integer
  sums first, floats only derived from the merged integers) and runs
  the genuinely tree-level analyzers (call graph, attack graph, OO
  design, churn, optional dynamic traces) live.

Cold extraction *is* collect + merge over every file, so a warm run that
merges cached records with freshly computed ones lands on the same code
path and therefore byte-identical rows — the incremental cache needs no
separate equivalence argument.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis import (
    callgraph,
    cfg as cfg_mod,
    churn as churn_mod,
    cyclomatic,
    dataflow,
    functions,
    halstead,
    identifiers,
    loc,
    maintainability,
    oo,
    smells,
)
from repro.analysis.artifact import artifact_for, artifacts_for
from repro.analysis.churn import CommitHistory
from repro.bugfind import Severity
from repro.bugfind.meta import file_summary
from repro.lang.languages import ALL_LANGUAGES
from repro.lang.parser import extract_functions
from repro.lang.sourcefile import Codebase, SourceFile
from repro.surface import attack_graph, rasq

#: Feature-name prefixes, in vector order (useful for ablations).
FEATURE_GROUPS = (
    "size", "lang", "complexity", "halstead", "shape", "flow", "calls",
    "surface", "bugs", "smell", "churn", "oo", "dynamic",
)

#: CFG path-count cap; must match ``cfg.measure_codebase``'s default so
#: the merge phase's sequential capping reproduces its arithmetic.
_PATH_CAP = 10 ** 6

#: One per-file record (all JSON round-trippable): analyzer key ->
#: integer aggregates. Bump ``ANALYZER_SET_VERSION`` when this changes.
FileRecord = Dict[str, object]


# -- per-file collectors ------------------------------------------------------
#
# Each collector comes in two flavours. The *fused* one (the default hot
# path) pulls every derived view — filtered tokens, function table, CFGs,
# per-node flow info — from the file's shared
# :class:`~repro.analysis.artifact.FileArtifact`, so the file is lexed and
# parsed exactly once no matter how many analyzers run. The *legacy* one
# is the original implementation where every analyzer re-derives its own
# views; it is kept as the independent reference the differential harness
# (``tests/analysis/test_fused_equivalence.py``) compares against. Both
# must produce byte-identical records.

def _collect_loc(source: SourceFile) -> FileRecord:
    counts = loc.count_file(source)
    return {"code": counts.code, "comment": counts.comment,
            "blank": counts.blank, "preproc": counts.preproc}


def _collect_cyclomatic(source: SourceFile) -> FileRecord:
    art = artifact_for(source)
    total, reports = cyclomatic.file_summary(
        source, art.functions, art.code_tokens
    )
    return {"total": total, "values": [r.complexity for r in reports]}


def _collect_cyclomatic_legacy(source: SourceFile) -> FileRecord:
    return {
        "total": cyclomatic.file_complexity(source),
        "values": [r.complexity
                   for r in cyclomatic.file_complexities(source)],
    }


def _halstead_record(hal) -> FileRecord:
    return {
        "distinct_operators": hal.distinct_operators,
        "distinct_operands": hal.distinct_operands,
        "total_operators": hal.total_operators,
        "total_operands": hal.total_operands,
    }


def _collect_halstead(source: SourceFile) -> FileRecord:
    # Comments and newlines are neither Halstead operators nor operands,
    # so counting over the filtered stream is exact.
    art = artifact_for(source)
    return _halstead_record(halstead.measure_tokens(art.code_tokens))


def _collect_halstead_legacy(source: SourceFile) -> FileRecord:
    return _halstead_record(halstead.measure_file(source))


def _functions_record(source: SourceFile, funcs, code_tokens=None) -> FileRecord:
    lengths = [f.length for f in funcs]
    nestings = [f.max_nesting for f in funcs]
    params = [f.param_count for f in funcs]
    return {
        "n_functions": len(funcs),
        "n_public": sum(1 for f in funcs if f.is_public),
        "total_params": sum(params),
        "max_params": max(params, default=0),
        "total_length": sum(lengths),
        "max_length": max(lengths, default=0),
        "total_nesting": sum(nestings),
        "max_nesting": max(nestings, default=0),
        "n_declarations": functions.count_declarations(source, code_tokens),
        "n_variables": functions.count_variables(source, code_tokens),
    }


def _collect_functions(source: SourceFile) -> FileRecord:
    art = artifact_for(source)
    return _functions_record(source, art.functions, art.code_tokens)


def _collect_functions_legacy(source: SourceFile) -> FileRecord:
    return _functions_record(source, extract_functions(source))


def _collect_identifiers(source: SourceFile) -> FileRecord:
    return dict(identifiers.file_counts(source, artifact_for(source).code_tokens))


def _collect_identifiers_legacy(source: SourceFile) -> FileRecord:
    return dict(identifiers.file_counts(source))


def _cfg_record(cfgs) -> FileRecord:
    nodes = edges = branches = returns = 0
    paths: List[int] = []
    cyclomatics: List[int] = []
    for graph in cfgs:
        nodes += graph.n_nodes
        edges += graph.n_edges
        branches += graph.n_branch_nodes
        returns += sum(
            1 for _, d in graph.graph.nodes(data=True)
            if d["kind"] == "return"
        )
        paths.append(graph.path_count(cap=_PATH_CAP))
        cyclomatics.append(graph.cyclomatic)
    return {"nodes": nodes, "edges": edges, "branches": branches,
            "returns": returns, "paths": paths, "cyclomatics": cyclomatics}


def _collect_cfg(source: SourceFile) -> FileRecord:
    return _cfg_record(artifact_for(source).cfgs)


def _collect_cfg_legacy(source: SourceFile) -> FileRecord:
    return _cfg_record(
        cfg_mod.build_cfg(func, source) for func in extract_functions(source)
    )


def _collect_dataflow(source: SourceFile) -> FileRecord:
    art = artifact_for(source)
    n_defs = pairs = max_reach = 0
    sources = sinks = tainted = 0
    for index, (func, graph) in enumerate(zip(art.functions, art.cfgs)):
        info = art.node_info(index)
        defs, _uses, du_pairs, reach = dataflow.rd_metrics(graph, info)
        n_defs += defs
        pairs += du_pairs
        max_reach = max(max_reach, reach)
        taint = dataflow.taint_analysis(graph, func.param_names, info)
        sources += taint.source_sites
        sinks += taint.sink_sites
        tainted += taint.tainted_sink_calls
    return {"defs": n_defs, "pairs": pairs, "max_reaching": max_reach,
            "sources": sources, "sinks": sinks, "tainted": tainted}


def _collect_dataflow_legacy(source: SourceFile) -> FileRecord:
    n_defs = pairs = max_reach = 0
    sources = sinks = tainted = 0
    for func in extract_functions(source):
        graph = cfg_mod.build_cfg(func, source)
        info = dataflow.node_flow_info(graph)
        defs, _uses, du_pairs, reach = dataflow.rd_metrics(graph, info)
        n_defs += defs
        pairs += du_pairs
        max_reach = max(max_reach, reach)
        taint = dataflow.taint_analysis(graph, func.param_names, info)
        sources += taint.source_sites
        sinks += taint.sink_sites
        tainted += taint.tainted_sink_calls
    return {"defs": n_defs, "pairs": pairs, "max_reaching": max_reach,
            "sources": sources, "sinks": sinks, "tainted": tainted}


def _surface_record(surface) -> FileRecord:
    return {
        "channels": dict(surface.channel_counts),
        "privilege": surface.n_privilege_sites,
        "public_methods": surface.n_public_methods,
    }


def _collect_surface(source: SourceFile) -> FileRecord:
    art = artifact_for(source)
    return _surface_record(
        rasq.measure_file(source, art.code_tokens, art.functions)
    )


def _collect_surface_legacy(source: SourceFile) -> FileRecord:
    single = Codebase(source.path, [source])
    return _surface_record(rasq.measure_codebase(single))


def _collect_bugs(source: SourceFile) -> FileRecord:
    art = artifact_for(source)
    return file_summary(source, art.code_tokens, art.functions,
                        art.call_sites)


def _collect_bugs_legacy(source: SourceFile) -> FileRecord:
    return file_summary(source)


def _collect_smells(source: SourceFile) -> FileRecord:
    counts = {kind: 0 for kind in smells.ALL_DETECTORS}
    for smell in smells.detect_file(source, artifact_for(source).functions):
        counts[smell.kind] += 1
    return counts


def _collect_smells_legacy(source: SourceFile) -> FileRecord:
    counts = {kind: 0 for kind in smells.ALL_DETECTORS}
    for smell in smells.detect_file(source):
        counts[smell.kind] += 1
    return counts


#: (span name, record key, collector) — analyzer-major so a cold run
#: emits one span per analyzer covering every file, exactly like the
#: pre-split whole-tree calls did. These are the fused collectors; the
#: first analyzer to touch a file builds its artifact, the rest share it.
_PER_FILE_COLLECTORS = (
    ("analysis.loc", "loc", _collect_loc),
    ("analysis.cyclomatic", "cyclomatic", _collect_cyclomatic),
    ("analysis.halstead", "halstead", _collect_halstead),
    ("analysis.functions", "functions", _collect_functions),
    ("analysis.identifiers", "identifiers", _collect_identifiers),
    ("analysis.cfg", "cfg", _collect_cfg),
    ("analysis.dataflow", "dataflow", _collect_dataflow),
    ("surface.rasq", "surface", _collect_surface),
    ("analysis.bugfind", "bugs", _collect_bugs),
    ("analysis.smells", "smells", _collect_smells),
)

#: The pre-artifact reference collectors, same span names and record
#: keys. Every entry re-derives its own token/function/CFG views from the
#: SourceFile alone (no artifact cache reads), so the differential harness
#: compares two genuinely independent computations.
LEGACY_PER_FILE_COLLECTORS = (
    ("analysis.loc", "loc", _collect_loc),
    ("analysis.cyclomatic", "cyclomatic", _collect_cyclomatic_legacy),
    ("analysis.halstead", "halstead", _collect_halstead_legacy),
    ("analysis.functions", "functions", _collect_functions_legacy),
    ("analysis.identifiers", "identifiers", _collect_identifiers_legacy),
    ("analysis.cfg", "cfg", _collect_cfg_legacy),
    ("analysis.dataflow", "dataflow", _collect_dataflow_legacy),
    ("surface.rasq", "surface", _collect_surface_legacy),
    ("analysis.bugfind", "bugs", _collect_bugs_legacy),
    ("analysis.smells", "smells", _collect_smells_legacy),
)


def file_record(source: SourceFile) -> FileRecord:
    """Run every per-file analyzer over one file (the delta hot path).

    This is what a warm re-analysis recomputes for the files whose
    content changed; everything else comes from the cache. Deliberately
    span-free below the caller's unit span — one file is too fine a
    grain to trace per analyzer.
    """
    record: FileRecord = {}
    for _, key, collect in _PER_FILE_COLLECTORS:
        record[key] = collect(source)
    obs.incr("testbed.files_analyzed")
    obs.incr("bugfind.findings", record["bugs"]["total"])
    obs.incr("bugfind.duplicates_removed",
             record["bugs"]["duplicates_removed"])
    return record


def file_record_legacy(source: SourceFile) -> FileRecord:
    """:func:`file_record` via the pre-artifact reference collectors.

    Every analyzer re-derives its own token/function/CFG views, exactly
    as before the single-parse artifact existed. Exists for the
    differential harness; deliberately counter-free so comparing the two
    paths does not double-book metrics.
    """
    record: FileRecord = {}
    for _, key, collect in LEGACY_PER_FILE_COLLECTORS:
        record[key] = collect(source)
    return record


def _collect_records(codebase: Codebase) -> List[FileRecord]:
    """Per-file records for every file, analyzer-major under spans."""
    sources = codebase.files
    obs.incr("testbed.files_analyzed", len(sources))
    records: List[FileRecord] = [{} for _ in sources]
    for span_name, key, collect in _PER_FILE_COLLECTORS:
        with obs.span(span_name):
            for record, source in zip(records, sources):
                record[key] = collect(source)
    # The meta-tool counters the pre-split run_all() call maintained:
    # per-file dedup partitions the global dedup exactly (the key pins
    # the path), so summed per-file tallies equal the whole-tree ones.
    obs.incr("bugfind.findings",
             sum(record["bugs"]["total"] for record in records))
    obs.incr("bugfind.duplicates_removed",
             sum(record["bugs"]["duplicates_removed"]
                 for record in records))
    return records


def merge_records(
    codebase: Codebase,
    records: List[FileRecord],
    nominal_kloc: Optional[float] = None,
    history: Optional[CommitHistory] = None,
    include_dynamic: bool = False,
) -> Dict[str, float]:
    """Fold per-file records into the feature row (plus tree analyzers).

    ``records`` must align with ``codebase.files`` (path-sorted order).
    Integer aggregates are summed first and every float is derived from
    the merged integers with the same expressions a whole-tree pass
    uses, so the result is bit-identical whether the records were just
    computed or replayed from the cache.

    The genuinely tree-level analyzers run live here; they receive the
    per-file artifact map so they share one parse per file (with each
    other, and with the per-file phase when it ran in this process).
    """
    artifacts = artifacts_for(codebase)
    row: Dict[str, float] = {}
    counts = loc.LineCounts(
        code=sum(r["loc"]["code"] for r in records),
        comment=sum(r["loc"]["comment"] for r in records),
        blank=sum(r["loc"]["blank"] for r in records),
        preproc=sum(r["loc"]["preproc"] for r in records),
    )
    sample_kloc = max(counts.code / 1000.0, 1e-6)
    kloc = nominal_kloc if nominal_kloc is not None else sample_kloc

    def density(value: float) -> float:
        return value / sample_kloc

    # -- size / language ----------------------------------------------------
    row["size.kloc"] = kloc
    row["size.log_kloc"] = math.log10(max(kloc, 1e-6))
    row["size.sample_loc"] = float(counts.code)
    row["size.comment_ratio"] = counts.comment_ratio
    row["size.blank_ratio"] = counts.blank / max(counts.total, 1)
    row["size.preproc_per_kloc"] = density(counts.preproc)
    primary = codebase.primary_language()
    for spec in ALL_LANGUAGES:
        row[f"lang.{spec.name}"] = 1.0 if primary == spec.name else 0.0

    # -- complexity -----------------------------------------------------------
    total_cc = sum(r["cyclomatic"]["total"] for r in records)
    cc_values: List[int] = []
    for r in records:
        cc_values.extend(r["cyclomatic"]["values"])
    dist = cyclomatic.distribution_from_values(cc_values)
    row["complexity.total"] = float(total_cc)
    row["complexity.per_kloc"] = density(total_cc)
    row["complexity.mean_function"] = dist["mean"]
    row["complexity.max_function"] = dist["max"]
    row["complexity.p90_function"] = dist["p90"]
    row["complexity.share_over_10"] = dist["over_10"]

    hal = halstead.HalsteadMetrics(
        distinct_operators=sum(
            r["halstead"]["distinct_operators"] for r in records),
        distinct_operands=sum(
            r["halstead"]["distinct_operands"] for r in records),
        total_operators=sum(
            r["halstead"]["total_operators"] for r in records),
        total_operands=sum(
            r["halstead"]["total_operands"] for r in records),
    )
    row["halstead.volume_per_kloc"] = density(hal.volume)
    with obs.span("analysis.maintainability"):
        mi = maintainability.report_from_aggregates(
            codebase.name, hal.volume, total_cc, counts.code,
            counts.comment_ratio,
        )
    row["complexity.maintainability_index"] = mi.mi
    row["halstead.difficulty"] = hal.difficulty
    row["halstead.effort_per_kloc"] = density(hal.effort)
    row["halstead.estimated_bugs_per_kloc"] = density(hal.estimated_bugs)
    row["halstead.vocabulary"] = float(hal.vocabulary)

    # -- shape -----------------------------------------------------------------
    n_functions = sum(r["functions"]["n_functions"] for r in records)
    total_params = sum(r["functions"]["total_params"] for r in records)
    total_length = sum(r["functions"]["total_length"] for r in records)
    total_nesting = sum(r["functions"]["total_nesting"] for r in records)
    row["shape.functions_per_kloc"] = density(n_functions)
    row["shape.public_share"] = (
        sum(r["functions"]["n_public"] for r in records) / n_functions
        if n_functions else 0.0
    )
    row["shape.mean_params"] = (
        total_params / n_functions if n_functions else 0.0
    )
    row["shape.max_params"] = float(max(
        (r["functions"]["max_params"] for r in records), default=0))
    row["shape.mean_length"] = (
        total_length / n_functions if n_functions else 0.0
    )
    row["shape.max_length"] = float(max(
        (r["functions"]["max_length"] for r in records), default=0))
    row["shape.mean_nesting"] = (
        total_nesting / n_functions if n_functions else 0.0
    )
    row["shape.max_nesting"] = float(max(
        (r["functions"]["max_nesting"] for r in records), default=0))
    row["shape.declarations_per_kloc"] = density(
        sum(r["functions"]["n_declarations"] for r in records))
    row["shape.variables_per_kloc"] = density(
        sum(r["functions"]["n_variables"] for r in records))
    # Merging per-file counters in path order recreates the global
    # counter's first-occurrence key order, which the float-summed
    # statistics depend on.
    merged_idents: Counter = Counter()
    for r in records:
        merged_idents.update(r["identifiers"])
    names = identifiers.metrics_from_counts(merged_idents)
    row["shape.identifier_mean_length"] = names.mean_length
    row["shape.identifier_short_fraction"] = names.short_name_fraction
    row["shape.identifier_numeric_suffixes"] = names.numeric_suffix_fraction
    row["shape.identifier_entropy"] = names.entropy

    # -- control / data flow -------------------------------------------------
    row["flow.cfg_nodes_per_kloc"] = density(
        sum(r["cfg"]["nodes"] for r in records))
    row["flow.cfg_edges_per_kloc"] = density(
        sum(r["cfg"]["edges"] for r in records))
    row["flow.branch_nodes_per_kloc"] = density(
        sum(r["cfg"]["branches"] for r in records))
    row["flow.return_nodes_per_kloc"] = density(
        sum(r["cfg"]["returns"] for r in records))
    cfg_cyclomatics: List[int] = []
    total_paths = 0
    for r in records:
        cfg_cyclomatics.extend(r["cfg"]["cyclomatics"])
        # Replicate the sequential per-function capping of
        # cfg.measure_codebase: the running total saturates at the cap.
        for path_count in r["cfg"]["paths"]:
            total_paths = min(_PATH_CAP, total_paths + path_count)
    row["flow.mean_cyclomatic"] = (
        sum(cfg_cyclomatics) / len(cfg_cyclomatics)
        if cfg_cyclomatics else 0.0
    )
    row["flow.log_paths"] = math.log10(1.0 + total_paths)
    row["flow.defs_per_kloc"] = density(
        sum(r["dataflow"]["defs"] for r in records))
    row["flow.def_use_per_kloc"] = density(
        sum(r["dataflow"]["pairs"] for r in records))
    row["flow.max_reaching"] = float(max(
        (r["dataflow"]["max_reaching"] for r in records), default=0))
    row["flow.taint_sources"] = float(
        sum(r["dataflow"]["sources"] for r in records))
    row["flow.taint_sinks"] = float(
        sum(r["dataflow"]["sinks"] for r in records))
    row["flow.tainted_sink_calls"] = float(
        sum(r["dataflow"]["tainted"] for r in records))

    # -- call graph (tree-level: edges cross file boundaries) ----------------
    with obs.span("analysis.callgraph"):
        calls = callgraph.measure_codebase(codebase, artifacts)
    row["calls.edges_per_function"] = (
        calls.n_edges / calls.n_functions if calls.n_functions else 0.0
    )
    row["calls.external_per_kloc"] = density(calls.n_external_calls)
    row["calls.max_fan_in"] = float(calls.max_fan_in)
    row["calls.max_fan_out"] = float(calls.max_fan_out)
    row["calls.reachable_fraction"] = calls.reachable_fraction
    row["calls.recursive_cycles"] = float(calls.n_recursive_cycles)

    # -- attack surface ---------------------------------------------------------
    channel_counts = {channel: 0 for channel in rasq.CHANNEL_WEIGHTS}
    for r in records:
        for channel in channel_counts:
            channel_counts[channel] += r["surface"]["channels"].get(
                channel, 0)
    surface = rasq.AttackSurface(
        channel_counts=channel_counts,
        n_public_methods=sum(
            r["surface"]["public_methods"] for r in records),
        n_privilege_sites=sum(
            r["surface"]["privilege"] for r in records),
    )
    row["surface.rasq_per_kloc"] = density(surface.rasq)
    row["surface.network_facing"] = 1.0 if surface.network_facing else 0.0
    for channel, count in sorted(surface.channel_counts.items()):
        row[f"surface.{channel}_per_kloc"] = density(count)
    row["surface.privilege_sites"] = float(surface.n_privilege_sites)
    with obs.span("surface.attack_graph"):
        graph_metrics = attack_graph.measure_codebase(
            codebase, artifacts=artifacts
        )
    row["surface.attack_states"] = float(graph_metrics.n_states)
    row["surface.goal_reachable"] = 1.0 if graph_metrics.goal_reachable else 0.0
    row["surface.shortest_attack_path"] = float(
        graph_metrics.shortest_path_length
    )
    row["surface.attack_cost"] = (
        graph_metrics.cheapest_cost
        if math.isfinite(graph_metrics.cheapest_cost)
        else 10.0  # sentinel: unreachable goal is "very costly"
    )

    # -- bug-finding tools -------------------------------------------------------
    bug_total = sum(r["bugs"]["total"] for r in records)
    high_floor = int(Severity.HIGH)
    bug_high = sum(
        count
        for r in records
        for sev, count in r["bugs"]["severities"].items()
        if int(sev) >= high_floor
    )
    per_rule: Dict[str, int] = {}
    per_cwe: Dict[int, int] = {}
    for r in records:
        for rule, count in r["bugs"]["per_rule"].items():
            per_rule[rule] = per_rule.get(rule, 0) + count
        for cwe_id, count in r["bugs"]["per_cwe"].items():
            key = int(cwe_id)
            per_cwe[key] = per_cwe.get(key, 0) + count
    row["bugs.total_per_kloc"] = density(bug_total)
    row["bugs.high_per_kloc"] = density(bug_high)
    for rule, count in sorted(per_rule.items()):
        row[f"bugs.rule.{rule}_per_kloc"] = density(count)
    for cwe_id, count in sorted(per_cwe.items()):
        row[f"bugs.cwe.{cwe_id}_per_kloc"] = density(count)

    # -- smells ---------------------------------------------------------------------
    smell_counts = {kind: 0 for kind in smells.ALL_DETECTORS}
    for r in records:
        for kind in smell_counts:
            smell_counts[kind] += r["smells"].get(kind, 0)
    for kind, count in sorted(smell_counts.items()):
        row[f"smell.{kind}_per_kloc"] = density(count)

    # -- churn / developers -------------------------------------------------------
    if history is not None:
        with obs.span("analysis.churn"):
            churn = churn_mod.churn_metrics(history)
            activity = churn_mod.developer_activity(history)
        row["churn.log_total"] = math.log10(1.0 + churn.total_churn)
        row["churn.relative"] = churn.relative_churn
        row["churn.high_churn_files"] = float(churn.n_high_churn_files)
        row["churn.mean_file"] = churn.mean_file_churn
        row["churn.authors"] = float(activity.n_authors)
        row["churn.commits_per_file"] = (
            activity.n_commits / max(len(history.files), 1)
        )
        row["churn.mean_authors_per_file"] = activity.mean_authors_per_file
        row["churn.network_density"] = activity.network_density
        row["churn.peripheral_authors"] = float(activity.n_peripheral_authors)
    else:
        for name in ("log_total", "relative", "high_churn_files", "mean_file",
                     "authors", "commits_per_file", "mean_authors_per_file",
                     "network_density", "peripheral_authors"):
            row[f"churn.{name}"] = 0.0

    # -- object-oriented design (Alshammari et al.) ----------------------------
    with obs.span("analysis.oo"):
        design = oo.measure_codebase(codebase, artifacts)
    row["oo.classes_per_kloc"] = density(design.n_classes)
    row["oo.mean_methods_per_class"] = design.mean_methods_per_class
    row["oo.public_method_fraction"] = design.public_method_fraction
    row["oo.public_field_fraction"] = design.public_field_fraction
    row["oo.accessibility"] = design.accessibility
    row["oo.mean_coupling"] = design.mean_coupling
    row["oo.max_inheritance_depth"] = float(design.max_inheritance_depth)

    # -- dynamic traces (optional, §5.3) ---------------------------------------
    if include_dynamic:
        from repro.analysis import dynamic

        with obs.span("analysis.dynamic"):
            traces = dynamic.measure_codebase(codebase, artifacts=artifacts)
        row["dynamic.node_coverage"] = traces.mean_node_coverage
        row["dynamic.edge_coverage"] = traces.mean_edge_coverage
        row["dynamic.trace_length"] = traces.mean_trace_length
        row["dynamic.hot_concentration"] = traces.mean_hot_concentration
        row["dynamic.dangerous_exec_per_kloc"] = density(
            traces.dangerous_executions
        )
        row["dynamic.truncation_rate"] = traces.truncation_rate

    return row


def extract_features_with_records(
    codebase: Codebase,
    nominal_kloc: Optional[float] = None,
    history: Optional[CommitHistory] = None,
    include_dynamic: bool = False,
) -> Tuple[Dict[str, float], List[FileRecord]]:
    """Extract the feature row *and* the per-file records behind it.

    The engine uses the records to populate its file-granular cache in
    the same pass that produced the row, so a cold extraction seeds the
    incremental path for free.
    """
    with obs.span("testbed.extract_features", app=codebase.name,
                  files=len(codebase)):
        records = _collect_records(codebase)
        row = merge_records(codebase, records, nominal_kloc, history,
                            include_dynamic)
    return row, records


def extract_features(
    codebase: Codebase,
    nominal_kloc: Optional[float] = None,
    history: Optional[CommitHistory] = None,
    include_dynamic: bool = False,
) -> Dict[str, float]:
    """Extract the full feature row for one application.

    Args:
        codebase: the (possibly sampled) source tree to analyse.
        nominal_kloc: the application's full size in kLoC as cloc would
            report it; defaults to the analysed sample's own size.
        history: optional commit history for churn/developer features.
        include_dynamic: also simulate dynamic traces (§5.3's optional
            improvement; costs roughly another CFG pass per function).

    Returns:
        An ordered-by-name dict of float features; missing analysers never
        occur (every group is always emitted, with zeros where the
        codebase has no relevant constructs).
    """
    row, _ = extract_features_with_records(
        codebase, nominal_kloc, history, include_dynamic
    )
    return row


def feature_group(name: str) -> str:
    """The group prefix of a feature name (before the first dot)."""
    return name.split(".", 1)[0]
