"""The paper's contribution: testbed, hypotheses, training, evaluation.

Quickstart::

    from repro.synth import build_corpus
    from repro.core import train, ChangeEvaluator

    corpus = build_corpus(seed=42)
    result = train(corpus)
    evaluator = ChangeEvaluator(result.model)
    assessment = evaluator.assess(my_codebase)
"""

from repro.core import (
    evaluator,
    features,
    filelevel,
    hypotheses,
    model,
    pipeline,
    report,
    system,
)
from repro.core.evaluator import (
    ChangeEvaluator,
    RiskDelta,
    Verdict,
    loc_naive_choice,
)
from repro.core.features import FEATURE_GROUPS, extract_features, feature_group
from repro.core.hypotheses import (
    CLASSIFICATION_HYPOTHESES,
    DEFAULT_HYPOTHESES,
    REGRESSION_HYPOTHESES,
    Hypothesis,
)
from repro.core.filelevel import (
    FilePredictionResult,
    build_file_dataset,
    evaluate_file_prediction,
    file_features,
)
from repro.core.model import RiskAssessment, SecurityModel
from repro.core.pipeline import (
    FeatureTable,
    TrainingResult,
    build_feature_table,
    train,
)
from repro.core.system import (
    Component,
    SystemEvaluator,
    SystemProfile,
    SystemRisk,
    format_system_report,
)
from repro.core.report import (
    format_assessment,
    format_delta,
    recommendations_for,
    risk_band,
)

__all__ = [
    "CLASSIFICATION_HYPOTHESES",
    "ChangeEvaluator",
    "Component",
    "DEFAULT_HYPOTHESES",
    "FEATURE_GROUPS",
    "FeatureTable",
    "FilePredictionResult",
    "Hypothesis",
    "REGRESSION_HYPOTHESES",
    "RiskAssessment",
    "RiskDelta",
    "SecurityModel",
    "SystemEvaluator",
    "SystemProfile",
    "SystemRisk",
    "TrainingResult",
    "Verdict",
    "build_feature_table",
    "evaluator",
    "build_file_dataset",
    "evaluate_file_prediction",
    "extract_features",
    "file_features",
    "filelevel",
    "feature_group",
    "features",
    "format_assessment",
    "format_delta",
    "format_system_report",
    "hypotheses",
    "loc_naive_choice",
    "model",
    "pipeline",
    "system",
    "recommendations_for",
    "report",
    "risk_band",
    "train",
]
