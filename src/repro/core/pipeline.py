"""End-to-end training pipeline (Figure 4).

``build_feature_table`` runs the testbed over a corpus; ``train`` fits one
estimator per hypothesis with cross-validation "within the ground truth"
(§1) and returns the :class:`~repro.core.model.SecurityModel` plus the
per-hypothesis CV quality — the numbers the F4 benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.features import feature_group
from repro.core.hypotheses import (
    DEFAULT_HYPOTHESES,
    KIND_CLASSIFICATION,
    Hypothesis,
)
from repro.core.model import SecurityModel
from repro.cve.database import AppVulnSummary, CVEDatabase
from repro.engine.scheduler import (
    ExtractionEngine,
    ExtractionTask,
    TaskFailure,
)
from repro.ml.crossval import (
    CVResult,
    cross_validate_classifier,
    cross_validate_regressor,
)
from repro.ml.dataset import Dataset
from repro.ml.logistic import LogisticRegression
from repro.ml.linear import LinearRegressor
from repro.ml.preprocess import StandardScaler
from repro.synth.corpus import Corpus


def default_classifier_factory():
    """The pipeline's default classifier (L2 logistic regression)."""
    return LogisticRegression(max_iter=400)


def default_regressor_factory():
    """The pipeline's default regressor (ridge regression).

    The penalty is sized for the testbed's regime — roughly 90 features
    on 164 applications — where plain OLS badly overfits.
    """
    return LinearRegressor(l2=10.0)


@dataclass(frozen=True)
class FeatureTable:
    """Feature rows plus the aligned app summaries.

    ``failures`` records applications the engine could not analyse
    under a non-raising failure policy; those apps carry no row and do
    not appear in ``app_names``. An empty tuple (the default, and the
    only possibility under ``on_error="raise"``) means a complete run.
    """

    app_names: Tuple[str, ...]
    rows: Tuple[Dict[str, float], ...]
    summaries: Tuple[AppVulnSummary, ...]
    failures: Tuple[TaskFailure, ...] = ()

    def dataset_for(self, hypothesis: Hypothesis) -> Dataset:
        """Dataset with this hypothesis's labels as the target."""
        labels = hypothesis.labels(self.summaries)
        return Dataset.from_rows(
            list(self.rows),
            labels,
            name=hypothesis.hypothesis_id,
            row_ids=self.app_names,
        )

    def restricted(self, groups: Sequence[str]) -> "FeatureTable":
        """Keep only features whose group prefix is in ``groups``.

        Used by the ablation benchmark (LoC-only vs full vector).
        """
        wanted = set(groups)
        rows = tuple(
            {k: v for k, v in row.items() if feature_group(k) in wanted}
            for row in self.rows
        )
        return FeatureTable(self.app_names, rows, self.summaries,
                            self.failures)

    def restricted_to_features(self, names: Sequence[str]) -> "FeatureTable":
        """Keep only the exactly named features."""
        wanted = set(names)
        rows = tuple(
            {k: v for k, v in row.items() if k in wanted} for row in self.rows
        )
        return FeatureTable(self.app_names, rows, self.summaries,
                            self.failures)


def build_feature_table(
    corpus: Corpus,
    database: Optional[CVEDatabase] = None,
    engine: Optional[ExtractionEngine] = None,
) -> FeatureTable:
    """Run the testbed over every application in ``corpus``.

    Applications are processed in name-sorted order regardless of how
    the corpus list happens to be arranged, so a shuffled corpus yields
    a bit-identical table (and, downstream, identical model bytes).
    With no explicit ``engine``, one is built from the environment
    (``REPRO_WORKERS``/``REPRO_CACHE_DIR``) — serial and uncached when
    those are unset.

    Under ``on_error="skip"``/``"retry"`` an app the engine could not
    analyse is dropped from the table (preserving the name-sorted order
    of the survivors, so the result is identical to building the table
    over a corpus that never contained the failing app) and recorded in
    ``FeatureTable.failures``.
    """
    db = database if database is not None else corpus.database
    if engine is None:
        engine = ExtractionEngine.from_env()
    apps = sorted(corpus.apps, key=lambda app: app.name)
    if len({app.name for app in apps}) != len(apps):
        raise ValueError(
            "corpus app names must be unique for deterministic row order"
        )
    tasks = [
        ExtractionTask(
            name=app.name,
            codebase=app.codebase,
            nominal_kloc=app.profile.kloc,
            history=corpus.histories.get(app.name),
        )
        for app in apps
    ]
    with obs.span("testbed.build_feature_table", apps=len(apps),
                  workers=engine.workers) as table_span:
        report = engine.run(tasks)
        obs.incr("testbed.apps_analyzed",
                 len(apps) - len(report.failures))
        if report.failures:
            table_span.set_attr("failures", len(report.failures))
    kept = [i for i, row in enumerate(report.rows) if row is not None]
    names = tuple(apps[i].name for i in kept)
    rows = tuple(report.rows[i] for i in kept)
    summaries = tuple(db.summary(name) for name in names)
    return FeatureTable(names, rows, summaries, tuple(report.failures))


@dataclass
class TrainingResult:
    """Everything the training phase produces."""

    model: SecurityModel
    cv_results: Dict[str, CVResult]
    table: FeatureTable

    def summary_rows(self) -> List[Tuple[str, str, float]]:
        """(hypothesis, metric, value) rows for reports."""
        rows: List[Tuple[str, str, float]] = []
        for hyp_id, result in sorted(self.cv_results.items()):
            headline = "auc" if "auc" in result.metrics else "r2"
            rows.append((hyp_id, headline, result.metrics[headline]))
        return rows


def select_features(
    table: FeatureTable,
    hypothesis: Hypothesis,
    k: int,
    method: str = "information_gain",
) -> FeatureTable:
    """§5.2's "filtering features that are irrelevant to the prediction".

    Ranks features against one hypothesis's labels (information gain or
    |correlation|) and keeps the top k. Always retains ``size.log_kloc``
    so the selected model is never worse-informed than the LoC baseline.
    """
    from repro.ml.feature_selection import (
        correlation_ranking,
        information_gain_ranking,
    )

    dataset = table.dataset_for(hypothesis)
    if method == "information_gain":
        ranked = information_gain_ranking(dataset)
    elif method == "correlation":
        ranked = correlation_ranking(dataset)
    else:
        raise ValueError(f"unknown selection method {method!r}")
    keep = [name for name, _ in ranked[:k]]
    if "size.log_kloc" not in keep:
        keep.append("size.log_kloc")
    return table.restricted_to_features(keep)


def train(
    corpus: Corpus,
    hypotheses: Sequence[Hypothesis] = DEFAULT_HYPOTHESES,
    classifier_factory: Callable = default_classifier_factory,
    regressor_factory: Callable = default_regressor_factory,
    k: int = 10,
    seed: int = 0,
    table: Optional[FeatureTable] = None,
    top_k_features: Optional[int] = None,
    selection_method: str = "information_gain",
    engine: Optional[ExtractionEngine] = None,
) -> TrainingResult:
    """Train the full model with k-fold cross-validation per hypothesis.

    Preprocessing (standardisation) is fitted inside each training fold —
    the "filtered classifier" discipline — and once more on the full data
    for the deployable model. With ``top_k_features`` set, the feature
    table is first reduced per §5.2's filtering step, ranked against the
    *first* hypothesis (so one shared feature space serves the model).
    """
    if table is None:
        table = build_feature_table(corpus, engine=engine)
    if top_k_features is not None:
        with obs.span("train.select_features", k=top_k_features,
                      method=selection_method):
            table = select_features(
                table, hypotheses[0], top_k_features, method=selection_method
            )
    cv_results: Dict[str, CVResult] = {}
    classifiers = {}
    regressors = {}
    scaler = StandardScaler()
    first_dataset = table.dataset_for(hypotheses[0])
    x_scaled = scaler.fit_apply(first_dataset.x)
    feature_names = first_dataset.feature_names

    for hypothesis in hypotheses:
        with obs.span("train.hypothesis",
                      hypothesis=hypothesis.hypothesis_id,
                      kind=hypothesis.kind):
            dataset = table.dataset_for(hypothesis)
            if dataset.feature_names != feature_names:
                raise ValueError("hypotheses disagree on feature columns")
            if hypothesis.kind == KIND_CLASSIFICATION:
                folds = min(k, _max_stratified_folds(dataset.y))
                cv_results[hypothesis.hypothesis_id] = (
                    cross_validate_classifier(
                        dataset,
                        classifier_factory,
                        k=folds,
                        seed=seed,
                        transform_factory=StandardScaler,
                    )
                )
                model = classifier_factory().fit(x_scaled, dataset.y)
                classifiers[hypothesis.hypothesis_id] = model
            else:
                cv_results[hypothesis.hypothesis_id] = (
                    cross_validate_regressor(
                        dataset,
                        regressor_factory,
                        k=min(k, dataset.n_rows),
                        seed=seed,
                        transform_factory=StandardScaler,
                    )
                )
                model = regressor_factory().fit(
                    x_scaled, np.asarray(dataset.y, dtype=float)
                )
                regressors[hypothesis.hypothesis_id] = model

    security_model = SecurityModel(
        feature_names=feature_names,
        scaler=scaler,
        classifiers=classifiers,
        regressors=regressors,
        hypotheses=hypotheses,
    )
    return TrainingResult(model=security_model, cv_results=cv_results,
                          table=table)


def _max_stratified_folds(labels) -> int:
    """Largest k such that every class appears in every training fold."""
    values, counts = np.unique(np.asarray(labels), return_counts=True)
    return max(2, int(counts.min()))
