"""File-level vulnerable-file prediction (Shin et al. [61]).

The paper's §4 anchor: "Shin et al. evaluate complexity, code churn, and
developer activity metrics as indicators of software vulnerabilities …
They are able to predict 80% of the vulnerable files." This module
reproduces that experiment shape on the corpus: per-file feature rows
(complexity + churn + developer activity), binary vulnerable-file labels,
and a recall-oriented evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import cyclomatic, halstead, loc
from repro.analysis.churn import CommitHistory, file_churn
from repro.analysis.functions import measure_file
from repro.lang.sourcefile import SourceFile
from repro.ml.crossval import stratified_kfold_indices
from repro.ml.dataset import Dataset
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import precision_recall_f1, roc_auc
from repro.ml.preprocess import StandardScaler
from repro.synth.corpus import Corpus


def file_features(
    source: SourceFile, history: Optional[CommitHistory] = None
) -> Dict[str, float]:
    """Shin-style feature row for one file.

    Complexity dimension: LoC, McCabe, Halstead volume, function shape,
    preprocessor lines. Churn/developer dimension (when a history is
    given): commits, churn, authors, active days.
    """
    counts = loc.count_file(source)
    shape = measure_file(source)
    hal = halstead.measure_file(source)
    row: Dict[str, float] = {
        "loc": float(counts.code),
        "comment_ratio": counts.comment_ratio,
        "preproc_lines": float(counts.preproc),
        "cyclomatic": float(cyclomatic.file_complexity(source)),
        "halstead_volume": hal.volume,
        "n_functions": float(shape.n_functions),
        "mean_params": shape.mean_params,
        "max_nesting": float(shape.max_nesting),
        "mean_length": shape.mean_length,
        "n_variables": float(shape.n_variables),
    }
    churn_stats = file_churn(history).get(source.path) if history else None
    if churn_stats is not None:
        row["churn_commits"] = float(churn_stats.n_commits)
        row["churn_total"] = float(churn_stats.total_churn)
        row["churn_per_commit"] = churn_stats.churn_per_commit
        row["n_authors"] = float(churn_stats.n_authors)
        row["days_active"] = float(churn_stats.days_active)
    else:
        for name in ("churn_commits", "churn_total", "churn_per_commit",
                     "n_authors", "days_active"):
            row[name] = 0.0
    return row


def build_file_dataset(corpus: Corpus) -> Dataset:
    """Per-file dataset over the whole corpus (labels: vulnerable file)."""
    rows: List[Dict[str, float]] = []
    labels: List[int] = []
    ids: List[str] = []
    for app in corpus.apps:
        history = corpus.histories.get(app.name)
        for source in app.codebase:
            rows.append(file_features(source, history))
            labels.append(1 if source.path in app.vulnerable_files else 0)
            ids.append(f"{app.name}:{source.path}")
    return Dataset.from_rows(rows, labels, name="vulnerable-files",
                             row_ids=ids)


@dataclass(frozen=True)
class FilePredictionResult:
    """Cross-validated vulnerable-file prediction quality."""

    recall: float  # the paper's headline: % of vulnerable files found
    precision: float
    f1: float
    auc: float
    n_files: int
    n_vulnerable: int


def evaluate_file_prediction(
    corpus: Corpus,
    k: int = 10,
    seed: int = 0,
    factory=None,
) -> FilePredictionResult:
    """Run the Shin-style experiment with stratified k-fold CV.

    The per-fold decision threshold is tuned for recall the way Shin et
    al.'s inspection-oriented models are: a file is flagged when the
    predicted probability exceeds the vulnerable-class prior (cheaper to
    over-inspect than to miss a vulnerable file).
    """
    if factory is None:
        factory = lambda: LogisticRegression(max_iter=400)
    dataset = build_file_dataset(corpus)
    y = np.asarray(dataset.y, dtype=int)
    folds = min(k, int(np.bincount(y).min()))
    splits = stratified_kfold_indices(y, max(2, folds), seed=seed)
    all_true: List[int] = []
    all_pred: List[int] = []
    all_scores: List[float] = []
    for train_idx, test_idx in splits:
        scaler = StandardScaler()
        x_train = scaler.fit_apply(dataset.x[train_idx])
        x_test = scaler.apply(dataset.x[test_idx])
        model = factory().fit(x_train, y[train_idx])
        classes = list(model.classes_)
        proba = model.predict_proba(x_test)
        scores = proba[:, classes.index(1)] if 1 in classes else np.zeros(
            len(test_idx)
        )
        threshold = max(float(y[train_idx].mean()), 1e-6)
        all_true.extend(y[test_idx].tolist())
        all_pred.extend((scores > threshold).astype(int).tolist())
        all_scores.extend(scores.tolist())
    precision, recall, f1 = precision_recall_f1(all_true, all_pred)
    return FilePredictionResult(
        recall=recall,
        precision=precision,
        f1=f1,
        auc=roc_auc(all_true, all_scores),
        n_files=len(all_true),
        n_vulnerable=int(sum(all_true)),
    )
