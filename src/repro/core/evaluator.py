"""Developer-facing evaluation (§5.3 and the §1 use cases).

Two workflows the paper motivates:

1. **Did my change raise or lower risk?** — ``risk_delta`` assesses two
   versions of a codebase with the trained model and reports, per
   hypothesis, whether risk moved and which code properties moved it.
   This is the check "one can incorporate into the standard development
   cycle".
2. **Which of two candidate libraries is safer?** — ``choose`` compares
   two codebases ("in selecting between two library implementations for
   use in a web service, our proposed metric would identify which is less
   likely to have vulnerabilities").

For contrast, ``loc_naive_choice`` implements the status-quo metric the
paper criticises — pick whichever has fewer lines of code — including the
§3.1 caveat that a same-order-of-magnitude comparison is statistically
meaningless.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis import loc
from repro.analysis.churn import CommitHistory
from repro.core.features import extract_features
from repro.core.model import RiskAssessment, SecurityModel
from repro.lang.sourcefile import Codebase
from repro.stats.bucketing import meaningful_loc_comparison


class Verdict(enum.Enum):
    """Outcome of a two-version or two-candidate comparison."""

    IMPROVED = "improved"
    REGRESSED = "regressed"
    NEUTRAL = "neutral"


#: Minimum change in overall risk considered a real movement.
NEUTRAL_BAND = 0.02


@dataclass(frozen=True)
class RiskDelta:
    """Risk movement between two versions of a codebase."""

    before: RiskAssessment
    after: RiskAssessment
    verdict: Verdict
    #: hypothesis id -> probability delta (after - before).
    probability_deltas: Dict[str, float]
    #: properties whose movement raised risk most, per §5.3's hint list.
    moved_properties: List[Tuple[str, float]]

    @property
    def overall_delta(self) -> float:
        return self.after.overall_risk - self.before.overall_risk


class ChangeEvaluator:
    """Applies a trained :class:`SecurityModel` to developer workflows."""

    def __init__(self, model: SecurityModel):
        self.model = model

    def assess(
        self,
        codebase: Codebase,
        nominal_kloc: Optional[float] = None,
        history: Optional[CommitHistory] = None,
    ) -> RiskAssessment:
        """Run the testbed and the model on one codebase."""
        with obs.span("evaluate.assess", app=codebase.name):
            features = extract_features(
                codebase, nominal_kloc=nominal_kloc, history=history
            )
            return self.model.assess(features)

    def risk_delta(
        self,
        before: Codebase,
        after: Codebase,
        nominal_kloc_before: Optional[float] = None,
        nominal_kloc_after: Optional[float] = None,
        history_before: Optional[CommitHistory] = None,
        history_after: Optional[CommitHistory] = None,
    ) -> RiskDelta:
        """Assess a code change: did risk move, and which properties moved it."""
        with obs.span("evaluate.risk_delta", before=before.name,
                      after=after.name):
            features_before = extract_features(
                before, nominal_kloc=nominal_kloc_before,
                history=history_before
            )
            features_after = extract_features(
                after, nominal_kloc=nominal_kloc_after, history=history_after
            )
            assess_before = self.model.assess(features_before)
            assess_after = self.model.assess(features_after)
            deltas = {
                hyp: assess_after.probabilities[hyp]
                - assess_before.probabilities[hyp]
                for hyp in assess_before.probabilities
            }
            overall = assess_after.overall_risk - assess_before.overall_risk
            if overall > NEUTRAL_BAND:
                verdict = Verdict.REGRESSED
            elif overall < -NEUTRAL_BAND:
                verdict = Verdict.IMPROVED
            else:
                verdict = Verdict.NEUTRAL
            moved = self._moved_properties(
                features_before, features_after, deltas
            )
            return RiskDelta(
                before=assess_before,
                after=assess_after,
                verdict=verdict,
                probability_deltas=deltas,
                moved_properties=moved,
            )

    def _moved_properties(
        self,
        features_before: Dict[str, float],
        features_after: Dict[str, float],
        deltas: Dict[str, float],
    ) -> List[Tuple[str, float]]:
        """Feature movements weighted by the riskiest hypothesis's weights."""
        if not deltas:
            return []
        worst = max(deltas, key=lambda hyp: deltas[hyp])
        weights = dict(
            self.model.top_properties(worst, k=len(self.model.feature_names))
        )
        movements = []
        for name, weight in weights.items():
            move = (
                features_after.get(name, 0.0) - features_before.get(name, 0.0)
            ) * weight
            if move > 0:
                movements.append((name, float(move)))
        movements.sort(key=lambda p: -p[1])
        return movements[:8]

    def choose(
        self, candidate_a: Codebase, candidate_b: Codebase
    ) -> Tuple[str, RiskAssessment, RiskAssessment]:
        """Pick the candidate less likely to harbour vulnerabilities.

        Returns (winner name, assessment of a, assessment of b); ties go
        to the alphabetically first name for determinism.
        """
        with obs.span("evaluate.choose", a=candidate_a.name,
                      b=candidate_b.name):
            assess_a = self.assess(candidate_a)
            assess_b = self.assess(candidate_b)
        if abs(assess_a.overall_risk - assess_b.overall_risk) < 1e-12:
            winner = min(candidate_a.name, candidate_b.name)
        elif assess_a.overall_risk < assess_b.overall_risk:
            winner = candidate_a.name
        else:
            winner = candidate_b.name
        return winner, assess_a, assess_b


def loc_naive_choice(
    candidate_a: Codebase, candidate_b: Codebase
) -> Tuple[str, bool]:
    """The status-quo baseline: fewer lines of code wins.

    Returns (winner name, meaningful) where ``meaningful`` applies §3.1's
    rule — the comparison only carries statistical weight when the sizes
    differ by more than an order of magnitude.
    """
    loc_a = max(loc.count_codebase(candidate_a).code, 1)
    loc_b = max(loc.count_codebase(candidate_b).code, 1)
    winner = candidate_a.name if loc_a <= loc_b else candidate_b.name
    return winner, meaningful_loc_comparison(loc_a, loc_b)
