"""Developer-facing reports and defense recommendations (§5.3).

Renders :class:`~repro.core.model.RiskAssessment` and
:class:`~repro.core.evaluator.RiskDelta` objects as plain-text reports,
and maps predicted risks to concrete defenses: "applying bound checking
if there is high risk of buffer overflow, or placing the application
behind firewall or intrusion protection if a network attack is
predicted".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.evaluator import RiskDelta, Verdict
from repro.core.model import RiskAssessment, SecurityModel

#: Defense playbook per hypothesis (§5.3's examples, extended).
RECOMMENDATIONS: Dict[str, str] = {
    "stack_overflow": "apply bounds checking / use bounded copy APIs "
                      "(strlcpy, snprintf); enable stack protectors",
    "memory_safety": "audit allocation sites; consider sanitizers "
                     "(ASan) in CI and fuzzing the parsers",
    "network_accessible": "place the application behind a firewall or "
                          "intrusion protection; reduce listening surface",
    "many_high_severity": "prioritise a security review of the flagged "
                          "properties; consider privilege separation",
}

#: Property-driven hints: feature prefix -> defence.
PROPERTY_HINTS: Tuple[Tuple[str, str], ...] = (
    ("bugs.rule.unbounded-copy", "replace unbounded copies with bounded APIs"),
    ("bugs.rule.format-string", "use literal format strings"),
    ("bugs.rule.command-injection", "avoid shell interpolation; use exec arrays"),
    ("bugs.rule.sql-concatenation", "switch to parameterised queries"),
    ("surface.network", "audit the network-facing entry points"),
    ("surface.process_spawn", "sandbox or drop privileges before spawning"),
    ("complexity.", "refactor the most complex functions (McCabe > 10)"),
    ("churn.", "add review gates on high-churn files"),
    ("smell.deep-nesting", "flatten deeply nested logic"),
)

_RISK_BANDS = ((0.75, "HIGH"), (0.45, "MEDIUM"), (0.0, "LOW"))


def risk_band(probability: float) -> str:
    """Qualitative band for a predicted probability."""
    for threshold, label in _RISK_BANDS:
        if probability >= threshold:
            return label
    return "LOW"


def recommendations_for(
    assessment: RiskAssessment, threshold: float = 0.5
) -> List[str]:
    """Defenses for every hypothesis predicted above ``threshold``."""
    out = []
    for hyp_id, probability in sorted(assessment.probabilities.items()):
        if probability >= threshold and hyp_id in RECOMMENDATIONS:
            out.append(f"{hyp_id}: {RECOMMENDATIONS[hyp_id]}")
    return out


def property_hints(flagged: Sequence[Tuple[str, float]]) -> List[str]:
    """Defense hints for flagged code properties."""
    hints = []
    for name, _contribution in flagged:
        for prefix, hint in PROPERTY_HINTS:
            if name.startswith(prefix):
                hints.append(f"{name}: {hint}")
                break
    return hints


def format_assessment(
    name: str,
    assessment: RiskAssessment,
    model: SecurityModel = None,
    features: Dict[str, float] = None,
) -> str:
    """Render one application's assessment as a text report."""
    lines = [f"Security assessment: {name}", "=" * (21 + len(name))]
    lines.append(f"overall risk: {assessment.overall_risk:.2f} "
                 f"({risk_band(assessment.overall_risk)})")
    lines.append("")
    lines.append("classification hypotheses (probability of 'yes'):")
    for hyp_id, p in sorted(assessment.probabilities.items()):
        lines.append(f"  {hyp_id:24s} {p:5.2f}  [{risk_band(p)}]")
    if assessment.estimates:
        lines.append("regression hypotheses (predicted value):")
        for hyp_id, value in sorted(assessment.estimates.items()):
            lines.append(f"  {hyp_id:24s} {value:6.2f}")
    recs = recommendations_for(assessment)
    if recs:
        lines.append("")
        lines.append("recommended defenses:")
        lines.extend(f"  - {r}" for r in recs)
    if model is not None and features is not None:
        worst = max(
            assessment.probabilities,
            key=lambda h: assessment.probabilities[h],
            default=None,
        )
        if worst is not None:
            flagged = model.flagged_properties(features, worst, k=5)
            if flagged:
                lines.append("")
                lines.append(f"properties driving {worst}:")
                for prop, contribution in flagged:
                    lines.append(f"  {prop:40s} +{contribution:.2f}")
                hints = property_hints(flagged)
                if hints:
                    lines.append("suggested actions:")
                    lines.extend(f"  - {h}" for h in hints)
    return "\n".join(lines)


def format_delta(name: str, delta: RiskDelta) -> str:
    """Render a code-change risk delta as a text report."""
    arrow = {
        Verdict.IMPROVED: "risk DOWN",
        Verdict.REGRESSED: "risk UP",
        Verdict.NEUTRAL: "risk unchanged",
    }[delta.verdict]
    lines = [
        f"Change evaluation: {name}",
        "=" * (19 + len(name)),
        f"verdict: {arrow} (overall {delta.before.overall_risk:.2f} -> "
        f"{delta.after.overall_risk:.2f})",
        "",
        "per-hypothesis movement:",
    ]
    for hyp_id, d in sorted(delta.probability_deltas.items()):
        sign = "+" if d >= 0 else ""
        lines.append(f"  {hyp_id:24s} {sign}{d:.3f}")
    if delta.moved_properties and delta.verdict is Verdict.REGRESSED:
        lines.append("")
        lines.append("properties that raised risk:")
        for prop, move in delta.moved_properties[:5]:
            lines.append(f"  {prop:40s} +{move:.3f}")
        hints = property_hints(delta.moved_properties[:5])
        if hints:
            lines.append("suggested actions:")
            lines.extend(f"  - {h}" for h in hints)
    return "\n".join(lines)
