"""Whole-system security evaluation (§5.3's future-work question).

"Can we use the same approach of evaluating application programs to
evaluate whole systems? We expect that total system security is
dependent upon the weakest link, although factors such as which
applications are network-facing have a role as well. Similarly, it is
challenging to model areas of containment … A goal for future work is to
apply the metric to a VM or Docker image."

This module implements that proposal: a :class:`SystemProfile` is a
manifest of components (a VM/container image's applications), each with
an exposure level and a containment domain. Per-component risk comes
from the trained :class:`~repro.core.model.SecurityModel`; system risk
composes them weakest-link-style, with containment boundaries
discounting lateral movement:

- components in the same domain share fate (compromise flows freely);
- a privilege/containment boundary between domains attenuates the
  contribution of inner components by ``containment_discount``;
- non-exposed components only matter once something in their domain (or
  an adjacent, less-contained domain) is compromised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.churn import CommitHistory
from repro.core.features import extract_features
from repro.core.model import RiskAssessment, SecurityModel
from repro.lang.sourcefile import Codebase

#: Exposure multipliers: how reachable a component is to an attacker.
EXPOSURE_WEIGHTS: Dict[str, float] = {
    "internet": 1.0,  # listens on an external interface
    "internal": 0.6,  # reachable from inside the deployment only
    "local": 0.3,  # local processes / IPC only
    "isolated": 0.1,  # no external inputs (batch, cron)
}

#: Attenuation applied across one containment boundary (ring crossing,
#: separate unprivileged user, container).
DEFAULT_CONTAINMENT_DISCOUNT = 0.5


@dataclass(frozen=True)
class Component:
    """One application inside the system image."""

    name: str
    codebase: Codebase
    exposure: str = "internal"  # key of EXPOSURE_WEIGHTS
    domain: str = "default"  # containment domain (container/user/ring)
    privileged: bool = False  # runs with elevated privilege
    nominal_kloc: Optional[float] = None
    history: Optional[CommitHistory] = None

    def __post_init__(self) -> None:
        if self.exposure not in EXPOSURE_WEIGHTS:
            raise ValueError(f"unknown exposure level: {self.exposure!r}")


@dataclass
class SystemProfile:
    """A deployable system: a named set of components."""

    name: str
    components: List[Component] = field(default_factory=list)

    def add(self, component: Component) -> None:
        if any(c.name == component.name for c in self.components):
            raise ValueError(f"duplicate component name: {component.name}")
        self.components.append(component)

    @property
    def domains(self) -> List[str]:
        return sorted({c.domain for c in self.components})


@dataclass(frozen=True)
class ComponentRisk:
    """Per-component model output plus its system-level weighting."""

    name: str
    domain: str
    exposure: str
    privileged: bool
    assessment: RiskAssessment
    effective_risk: float  # exposure-weighted overall risk


@dataclass(frozen=True)
class SystemRisk:
    """System-level evaluation result."""

    system: str
    components: Tuple[ComponentRisk, ...]
    weakest_link: str
    weakest_link_risk: float
    #: P(at least one exposed component compromised), exposure-weighted.
    entry_risk: float
    #: entry risk amplified by privileged components reachable after
    #: containment discounts — the "total system" number.
    system_risk: float

    def by_domain(self) -> Dict[str, List[ComponentRisk]]:
        out: Dict[str, List[ComponentRisk]] = {}
        for c in self.components:
            out.setdefault(c.domain, []).append(c)
        return out


class SystemEvaluator:
    """Applies a trained model to whole-system manifests."""

    def __init__(
        self,
        model: SecurityModel,
        containment_discount: float = DEFAULT_CONTAINMENT_DISCOUNT,
    ):
        if not 0.0 <= containment_discount <= 1.0:
            raise ValueError("containment_discount must be in [0, 1]")
        self.model = model
        self.containment_discount = containment_discount

    def evaluate(self, system: SystemProfile) -> SystemRisk:
        """Evaluate every component and compose the system risk."""
        if not system.components:
            raise ValueError(f"system {system.name!r} has no components")
        risks: List[ComponentRisk] = []
        for component in system.components:
            features = extract_features(
                component.codebase,
                nominal_kloc=component.nominal_kloc,
                history=component.history,
            )
            assessment = self.model.assess(features)
            effective = (
                assessment.overall_risk * EXPOSURE_WEIGHTS[component.exposure]
            )
            risks.append(
                ComponentRisk(
                    name=component.name,
                    domain=component.domain,
                    exposure=component.exposure,
                    privileged=component.privileged,
                    assessment=assessment,
                    effective_risk=effective,
                )
            )

        weakest = max(risks, key=lambda r: r.effective_risk)

        # Entry: chance that at least one component falls to direct input.
        survival = 1.0
        for r in risks:
            survival *= 1.0 - min(r.effective_risk, 1.0)
        entry_risk = 1.0 - survival

        # Escalation: a privileged component amplifies system risk; if it
        # sits in a different containment domain than the likely entry
        # point, the boundary discounts the amplification. The entry point
        # is the riskiest *externally reachable* component — a local-only
        # daemon is never where the attacker lands first.
        reachable = [r for r in risks if r.exposure in ("internet",
                                                        "internal")]
        entry_domain = (
            max(reachable, key=lambda r: r.effective_risk).domain
            if reachable
            else weakest.domain
        )
        amplification = 1.0
        for r in risks:
            if not r.privileged:
                continue
            barrier = 1.0 if r.domain == entry_domain else (
                self.containment_discount
            )
            amplification = max(
                amplification,
                1.0 + barrier * r.assessment.overall_risk,
            )
        system_risk = min(entry_risk * amplification, 1.0)

        return SystemRisk(
            system=system.name,
            components=tuple(
                sorted(risks, key=lambda r: -r.effective_risk)
            ),
            weakest_link=weakest.name,
            weakest_link_risk=weakest.effective_risk,
            entry_risk=entry_risk,
            system_risk=system_risk,
        )


def format_system_report(risk: SystemRisk) -> str:
    """Plain-text report for a system evaluation."""
    lines = [
        f"System assessment: {risk.system}",
        "=" * (19 + len(risk.system)),
        f"system risk: {risk.system_risk:.2f}   "
        f"entry risk: {risk.entry_risk:.2f}   "
        f"weakest link: {risk.weakest_link} "
        f"({risk.weakest_link_risk:.2f})",
        "",
        "components (by effective risk):",
    ]
    for c in risk.components:
        flags = []
        if c.privileged:
            flags.append("privileged")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  {c.name:20s} domain={c.domain:10s} "
            f"exposure={c.exposure:9s} risk={c.effective_risk:.2f}{suffix}"
        )
    return "\n".join(lines)
