"""CVE hypotheses — the prediction targets of Figure 4.

§5.2: "we use machine learning to train a series of hypotheses on the
sample applications: How many high-severity vulnerabilities exist in an
application (CVSS > 7)? Does an application contain any vulnerabilities
that are accessible from the network (Attack Vectors = N)? Does an
application suffer any stack-based buffer overflow (CWE = 121)?"

A :class:`Hypothesis` turns an application's
:class:`~repro.cve.database.AppVulnSummary` into a target value.
Classification hypotheses whose raw condition would be almost always true
on the corpus (every big app has *some* network-reachable CVE) support a
``median`` threshold mode: the yes/no split is taken against the corpus
median of the underlying count, which is how one gets a balanced, learnable
question ("more network-reachable vulnerabilities than the typical app?").
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.cve.database import AppVulnSummary

KIND_CLASSIFICATION = "classification"
KIND_REGRESSION = "regression"


@dataclass(frozen=True)
class Hypothesis:
    """One prediction target.

    Attributes:
        hypothesis_id: short stable identifier (used in reports/benches).
        description: the question, phrased as in §5.2.
        kind: classification or regression.
        raw_value: summary -> float (count, score, or 0/1 indicator).
        median_split: for classification, compare raw values against the
            corpus median instead of against zero.
    """

    hypothesis_id: str
    description: str
    kind: str
    raw_value: Callable[[AppVulnSummary], float]
    median_split: bool = False
    #: Valid range for regression predictions (min, max); predictions are
    #: clamped into it (e.g. a CVSS mean can never exceed 10).
    value_range: tuple = (0.0, float("inf"))

    def labels(self, summaries: Sequence[AppVulnSummary]) -> List:
        """Target vector for a corpus of app summaries."""
        raw = [self.raw_value(s) for s in summaries]
        if self.kind == KIND_REGRESSION:
            return raw
        if self.median_split:
            cut = statistics.median(raw)
            return [1 if v > cut else 0 for v in raw]
        return [1 if v > 0 else 0 for v in raw]


def _log_count(summary: AppVulnSummary) -> float:
    return math.log10(1.0 + summary.n_total)


def _log_high_severity(summary: AppVulnSummary) -> float:
    return math.log10(1.0 + summary.n_high_severity)


def _n_high_severity(summary: AppVulnSummary) -> float:
    return float(summary.n_high_severity)


def _n_network(summary: AppVulnSummary) -> float:
    return float(summary.n_network)


def _n_cwe121(summary: AppVulnSummary) -> float:
    return float(summary.count_cwe(121, include_descendants=False))


def _n_memory(summary: AppVulnSummary) -> float:
    return float(summary.n_by_category.get("memory", 0))


def _mean_score(summary: AppVulnSummary) -> float:
    return summary.mean_score


HIGH_SEVERITY_COUNT = Hypothesis(
    hypothesis_id="high_severity_count",
    description="How many high-severity vulnerabilities (CVSS > 7)?",
    kind=KIND_REGRESSION,
    raw_value=_log_high_severity,
)

MANY_HIGH_SEVERITY = Hypothesis(
    hypothesis_id="many_high_severity",
    description="More high-severity vulnerabilities (CVSS > 7) than the "
                "typical application?",
    kind=KIND_CLASSIFICATION,
    raw_value=_n_high_severity,
    median_split=True,
)

NETWORK_ACCESSIBLE = Hypothesis(
    hypothesis_id="network_accessible",
    description="More network-reachable vulnerabilities (AV = N) than the "
                "typical application?",
    kind=KIND_CLASSIFICATION,
    raw_value=_n_network,
    median_split=True,
)

STACK_OVERFLOW = Hypothesis(
    hypothesis_id="stack_overflow",
    description="Any stack-based buffer overflow (CWE = 121)?",
    kind=KIND_CLASSIFICATION,
    raw_value=_n_cwe121,
)

MEMORY_SAFETY = Hypothesis(
    hypothesis_id="memory_safety",
    description="More memory-safety weaknesses than the typical application?",
    kind=KIND_CLASSIFICATION,
    raw_value=_n_memory,
    median_split=True,
)

TOTAL_COUNT = Hypothesis(
    hypothesis_id="total_count",
    description="How many vulnerabilities in total (log10)?",
    kind=KIND_REGRESSION,
    raw_value=_log_count,
)

MEAN_SEVERITY = Hypothesis(
    hypothesis_id="mean_severity",
    description="What is the mean CVSS score of the app's vulnerabilities?",
    kind=KIND_REGRESSION,
    raw_value=_mean_score,
    value_range=(0.0, 10.0),
)

#: The default hypothesis battery trained by the pipeline.
DEFAULT_HYPOTHESES = (
    MANY_HIGH_SEVERITY,
    NETWORK_ACCESSIBLE,
    STACK_OVERFLOW,
    MEMORY_SAFETY,
    HIGH_SEVERITY_COUNT,
    TOTAL_COUNT,
    MEAN_SEVERITY,
)

CLASSIFICATION_HYPOTHESES = tuple(
    h for h in DEFAULT_HYPOTHESES if h.kind == KIND_CLASSIFICATION
)
REGRESSION_HYPOTHESES = tuple(
    h for h in DEFAULT_HYPOTHESES if h.kind == KIND_REGRESSION
)


def by_id(hypothesis_id: str) -> Hypothesis:
    """Look up a default hypothesis by its id."""
    for hypothesis in DEFAULT_HYPOTHESES:
        if hypothesis.hypothesis_id == hypothesis_id:
            return hypothesis
    raise KeyError(hypothesis_id)
