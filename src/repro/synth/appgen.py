"""Synthetic application source generator.

Produces *actual source text* in C/C++/Java/Python for each
:class:`~repro.synth.profiles.AppProfile`, so the static-analysis testbed
runs end-to-end on real token streams rather than mocked numbers. The
profile's latent factors control measurable densities:

- ``z_complexity`` — branching probability, loop nesting, function length;
- ``z_danger`` — density of dangerous-API call sites (strcpy/eval/...);
- ``z_surface`` — density of channel APIs (sockets, exec, file I/O) and,
  with ``network_facing``, the presence of a server loop;
- ``z_churn`` — (used by :mod:`repro.synth.history`, not here).

Generating the full nominal size (up to millions of lines) is pointless
and slow, so the generator emits a *representative sample* capped at
``max_lines``; density features measured on the sample estimate the full
app's densities, while the nominal kLoC is carried as profile metadata —
exactly the split a real testbed faces between cloc totals and sampled
deep analysis. Files that receive seeded dangerous sites are returned as
the app's *vulnerable files* (ground truth for the Shin-et-al. file-level
experiment).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lang.sourcefile import Codebase, SourceFile
from repro.synth.profiles import AppProfile

_EXTENSION = {"c": ".c", "cpp": ".cc", "java": ".java", "python": ".py"}

_DANGEROUS_CALLS = {
    "c": ('strcpy(buf, input)', 'sprintf(buf, fmt)', 'gets(buf)',
          'strcat(buf, input)', 'system(cmd)'),
    "cpp": ('strcpy(buf, input)', 'sprintf(buf, fmt)', 'memcpy(dst, src, n * m)',
            'system(cmd)'),
    "java": ('stmt.query("SELECT * FROM t WHERE k=" + key)',
             'Runtime.exec(cmd)'),
    "python": ('eval(expr)', 'os.system(cmd)',
               'cur.query("SELECT * FROM t WHERE k=" + key)'),
}

_SURFACE_CALLS = {
    "c": ("recv(sock, buf, n, 0)", "fopen(path, mode)", "getenv(name)",
          "read(fd, buf, n)"),
    "cpp": ("recv(sock, buf, n, 0)", "fopen(path, mode)", "getenv(name)"),
    "java": ("FileReader(path)", "ProcessBuilder(cmd)"),
    "python": ("open(path)", "subprocess.run(cmd)", "os.getenv(name)"),
}

_NETWORK_SNIPPET = {
    "c": ("sock = socket(AF_INET, SOCK_STREAM, 0)",
          "bind(sock, addr, len)", "listen(sock, 16)",
          "conn = accept(sock, addr, len)"),
    "cpp": ("sock = socket(AF_INET, SOCK_STREAM, 0)",
            "listen(sock, 16)", "conn = accept(sock, addr, len)"),
    "java": ("server = ServerSocket(port)", "conn = server.accept()"),
    "python": ("sock = socket.socket()", "sock.bind(addr)",
               "sock.listen(16)", "conn = sock.accept()"),
}


def _sigmoid(z: float) -> float:
    return 1.0 / (1.0 + math.exp(-z))


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunables for the code generator."""

    max_lines: int = 1400  # sample-size cap per application
    min_lines: int = 300
    mean_function_lines: int = 18
    comment_probability: float = 0.12


@dataclass
class SyntheticApp:
    """One generated application: profile, sampled code, ground truth."""

    profile: AppProfile
    codebase: Codebase
    vulnerable_files: FrozenSet[str]

    @property
    def name(self) -> str:
        return self.profile.name


class _Writer:
    """Indentation-aware line buffer."""

    def __init__(self, indent_unit: str = "    "):
        self.lines: List[str] = []
        self.depth = 0
        self.unit = indent_unit

    def emit(self, text: str = "") -> None:
        if text:
            self.lines.append(self.unit * self.depth + text)
        else:
            self.lines.append("")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    def __len__(self) -> int:
        return len(self.lines)


class _AppGenerator:
    """Generates one application's sampled codebase from its profile."""

    def __init__(self, profile: AppProfile, seed: int, config: GeneratorConfig):
        self.profile = profile
        self.rng = random.Random(f"{seed}:{profile.name}:code")
        self.config = config
        self.language = profile.language
        # Densities from the latent factors (bounded, monotone).
        self.p_branch = 0.20 + 0.16 * _sigmoid(profile.z_complexity)
        self.p_loop = 0.10 + 0.08 * _sigmoid(profile.z_complexity)
        self.extra_nesting = profile.z_complexity > 0.8
        self.p_danger = 0.01 + 0.05 * _sigmoid(1.3 * profile.z_danger)
        self.p_surface = 0.01 + 0.05 * _sigmoid(1.2 * profile.z_surface)
        #: Danger sites cluster in "risky" files (matching the empirical
        #: observation behind Shin et al.: vulnerabilities concentrate in a
        #: minority of files, which is what makes file-level prediction a
        #: meaningful task).
        self.p_risky_file = 0.12 + 0.38 * _sigmoid(profile.z_danger)
        self._counter = 0
        self._functions: List[str] = []
        self._file_is_risky = False
        self.vulnerable_files: List[str] = []

    # -- helpers ------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def _sample_lines(self) -> int:
        # Sub-linear in nominal size: big apps get bigger samples, but the
        # cap keeps whole-corpus analysis tractable. Calibrated so the
        # 8-6000 kLoC profile range maps onto [min_lines, max_lines).
        target = 90.0 * self.profile.kloc**0.4
        return int(
            min(self.config.max_lines, max(self.config.min_lines, target))
        )

    def generate(self) -> Tuple[Codebase, FrozenSet[str]]:
        """Generate the sampled codebase and its vulnerable-file set."""
        total_budget = self._sample_lines()
        n_files = max(3, min(12, total_budget // 120))
        per_file = total_budget // n_files
        sources: Dict[str, str] = {}
        ext = _EXTENSION[self.language]
        for i in range(n_files):
            path = f"src/module_{i:02d}{ext}"
            sources[path] = self._generate_file(i, per_file, path)
        if self.profile.network_facing:
            path = f"src/server{ext}"
            sources[path] = self._generate_server_file(path)
        codebase = Codebase.from_sources(self.profile.name, sources)
        return codebase, frozenset(self.vulnerable_files)

    # -- file generation -------------------------------------------------------

    def _generate_file(self, index: int, budget: int, path: str) -> str:
        writer = _Writer()
        self._file_is_risky = self.rng.random() < self.p_risky_file
        self._file_header(writer, index)
        n_functions = max(2, budget // self.config.mean_function_lines)
        class_name = None
        if self.language == "java":
            class_name = f"Module{index:02d}"
            writer.emit(f"public class {class_name} {{")
            writer.depth += 1
        for f in range(n_functions):
            if len(writer) >= budget:
                break
            self._generate_function(writer, path)
            writer.emit()
        if self.language == "c" and index == 0:
            self._generate_main(writer)
        if class_name is not None:
            writer.depth -= 1
            writer.emit("}")
        return writer.text()

    def _file_header(self, writer: _Writer, index: int) -> None:
        if self.language in ("c", "cpp"):
            writer.emit("#include <stdio.h>")
            writer.emit("#include <stdlib.h>")
            writer.emit("#include <string.h>")
        elif self.language == "python":
            writer.emit("import os")
            writer.emit("import sys")
        elif self.language == "java":
            writer.emit("import java.io.*;")
        writer.emit()

    # -- function bodies ------------------------------------------------------

    def _generate_function(self, writer: _Writer, path: str) -> None:
        name = self._fresh("proc")
        params = [self._fresh("arg") for _ in range(self.rng.randint(0, 4))]
        self._functions.append(name)
        if self.rng.random() < self.config.comment_probability:
            writer.emit(self._comment(f"{name}: generated routine"))
        self._open_function(writer, name, params)
        body_lines = max(4, int(self.rng.gauss(self.config.mean_function_lines, 5)))
        self._statement_block(writer, body_lines, depth=0, path=path,
                              vars_in_scope=list(params) or ["state"])
        self._close_function(writer, name)

    def _open_function(self, writer: _Writer, name: str, params: List[str]) -> None:
        if self.language in ("c", "cpp"):
            sig = ", ".join(f"int {p}" for p in params) or "void"
            writer.emit(f"static int {name}({sig}) {{")
        elif self.language == "java":
            sig = ", ".join(f"int {p}" for p in params)
            writer.emit(f"public int {name}({sig}) {{")
        else:
            sig = ", ".join(params)
            writer.emit(f"def {name}({sig}):")
        writer.depth += 1
        if self.language in ("c", "cpp"):
            writer.emit("char buf[64];")
            writer.emit("int result = 0;")
        elif self.language == "java":
            writer.emit("int result = 0;")
        else:
            writer.emit("result = 0")

    def _close_function(self, writer: _Writer, name: str) -> None:
        if self.language == "python":
            writer.emit("return result")
            writer.depth -= 1
        else:
            writer.emit("return result;")
            writer.depth -= 1
            writer.emit("}")

    def _statement_block(
        self,
        writer: _Writer,
        budget: int,
        depth: int,
        path: str,
        vars_in_scope: List[str],
    ) -> None:
        emitted = 0
        max_depth = 3 if self.extra_nesting else 2
        p_danger = self.p_danger if self._file_is_risky else self.p_danger / 25.0
        # Risky files are also somewhat gnarlier (Shin et al. found file
        # complexity itself predicts vulnerable files).
        p_branch = self.p_branch * (1.35 if self._file_is_risky else 1.0)
        while emitted < budget:
            roll = self.rng.random()
            nested_ok = depth < max_depth
            threshold_branch = p_branch if nested_ok else 0.0
            threshold_loop = threshold_branch + (self.p_loop if nested_ok else 0.0)
            threshold_danger = threshold_loop + p_danger
            threshold_surface = threshold_danger + self.p_surface
            if roll < threshold_branch:
                emitted += self._emit_branch(writer, budget - emitted, depth,
                                             path, vars_in_scope)
            elif roll < threshold_loop:
                emitted += self._emit_loop(writer, budget - emitted, depth,
                                           path, vars_in_scope)
            elif roll < threshold_danger:
                self._emit_danger(writer, path)
                emitted += 1
            elif roll < threshold_surface:
                self._emit_surface(writer)
                emitted += 1
            else:
                self._emit_simple(writer, vars_in_scope)
                emitted += 1

    def _cond(self, vars_in_scope: List[str]) -> str:
        var = self.rng.choice(vars_in_scope)
        op = self.rng.choice((">", "<", "==", "!="))
        value = self.rng.choice((0, 1, 7, 64, 255))
        cond = f"{var} {op} {value}"
        if self.rng.random() < 0.3:
            other = self.rng.choice(vars_in_scope)
            joiner = "&&" if self.language != "python" else "and"
            cond += f" {joiner} {other} > 0"
        return cond

    def _emit_branch(self, writer, budget, depth, path, vars_in_scope) -> int:
        cond = self._cond(vars_in_scope)
        inner = min(budget, self.rng.randint(1, 4))
        if self.language == "python":
            writer.emit(f"if {cond}:")
        else:
            writer.emit(f"if ({cond}) {{")
        writer.depth += 1
        self._statement_block(writer, inner, depth + 1, path, vars_in_scope)
        writer.depth -= 1
        used = inner + 1
        if self.language != "python":
            writer.emit("}")
        if self.rng.random() < 0.4 and budget - used > 1:
            if self.language == "python":
                writer.emit("else:")
            else:
                writer.emit("else {")
            writer.depth += 1
            extra = min(budget - used, self.rng.randint(1, 3))
            self._statement_block(writer, extra, depth + 1, path, vars_in_scope)
            writer.depth -= 1
            if self.language != "python":
                writer.emit("}")
            used += extra + 1
        return used

    def _emit_loop(self, writer, budget, depth, path, vars_in_scope) -> int:
        inner = min(budget, self.rng.randint(1, 4))
        idx = self._fresh("i")
        bound = self.rng.choice((8, 16, 100))
        if self.language == "python":
            writer.emit(f"for {idx} in range({bound}):")
        elif self.language == "java":
            writer.emit(f"for (int {idx} = 0; {idx} < {bound}; {idx}++) {{")
        else:
            writer.emit(f"for (int {idx} = 0; {idx} < {bound}; {idx}++) {{")
        writer.depth += 1
        self._statement_block(writer, inner, depth + 1, path,
                              vars_in_scope + [idx])
        writer.depth -= 1
        if self.language != "python":
            writer.emit("}")
        return inner + 1

    def _emit_danger(self, writer, path: str) -> None:
        call = self.rng.choice(_DANGEROUS_CALLS[self.language])
        writer.emit(call if self.language == "python" else call + ";")
        if path not in self.vulnerable_files:
            self.vulnerable_files.append(path)

    def _emit_surface(self, writer) -> None:
        call = self.rng.choice(_SURFACE_CALLS[self.language])
        target = self._fresh("h")
        if self.language == "python":
            writer.emit(f"{target} = {call}")
        else:
            writer.emit(f"int {target} = {call};")

    def _emit_simple(self, writer, vars_in_scope: List[str]) -> None:
        if self.rng.random() < self.config.comment_probability:
            writer.emit(self._comment("bookkeeping"))
            return
        var = self.rng.choice(vars_in_scope + ["result"])
        expr_var = self.rng.choice(vars_in_scope + ["result"])
        op = self.rng.choice(("+", "-", "*"))
        value = self.rng.choice((1, 2, 3, 31, 97))
        if self.language == "python":
            writer.emit(f"{var} = {expr_var} {op} {value}")
        else:
            writer.emit(f"{var} = {expr_var} {op} {value};")
        if self._functions and self.rng.random() < 0.25:
            callee = self.rng.choice(self._functions)
            args = ", ".join(
                self.rng.choice(vars_in_scope + ["result"])
                for _ in range(self.rng.randint(0, 2))
            )
            if self.language == "python":
                writer.emit(f"result = {callee}({args})")
            else:
                writer.emit(f"result = {callee}({args});")

    def _comment(self, text: str) -> str:
        return f"# {text}" if self.language == "python" else f"/* {text} */"

    # -- special files -----------------------------------------------------------

    def _generate_main(self, writer: _Writer) -> None:
        writer.emit("int main(int argc, char **argv) {")
        writer.depth += 1
        writer.emit("int result = 0;")
        if self._functions:
            writer.emit(f"result = {self.rng.choice(self._functions)}(argc);")
        writer.emit("return result;")
        writer.depth -= 1
        writer.emit("}")

    def _generate_server_file(self, path: str) -> str:
        writer = _Writer()
        self._file_header(writer, 99)
        lang = self.language
        if lang == "java":
            writer.emit("public class Server {")
            writer.depth += 1
        name = "serve_loop"
        self._open_function(writer, name, ["port"])
        for line in _NETWORK_SNIPPET[lang]:
            writer.emit(line if lang == "python" else line + ";")
        # A network-facing input is handled, sometimes dangerously.
        if self.rng.random() < _sigmoid(self.profile.z_danger):
            self._emit_danger(writer, path)
        self._emit_simple(writer, ["port"])
        self._close_function(writer, name)
        if lang == "java":
            writer.depth -= 1
            writer.emit("}")
        return writer.text()


def generate_app(
    profile: AppProfile,
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
) -> SyntheticApp:
    """Generate the sampled codebase for one application profile."""
    generator = _AppGenerator(profile, seed, config or GeneratorConfig())
    codebase, vulnerable = generator.generate()
    return SyntheticApp(
        profile=profile, codebase=codebase, vulnerable_files=vulnerable
    )


def generate_apps(
    profiles: Sequence[AppProfile],
    seed: int = 0,
    config: Optional[GeneratorConfig] = None,
    workers: int = 1,
) -> List[SyntheticApp]:
    """Generate sampled codebases for every profile.

    Each app is seeded independently (``f"{seed}:{name}:code"``), so
    fanning generation across ``workers`` processes cannot change the
    output: results are merged in profile order either way.
    """
    import functools

    from repro.engine.scheduler import parallel_map

    cfg = config or GeneratorConfig()
    return parallel_map(
        functools.partial(generate_app, seed=seed, config=cfg),
        profiles,
        workers=workers,
    )
