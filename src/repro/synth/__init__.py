"""Calibrated synthetic corpus: apps, CVE histories, commit logs, surveys.

See DESIGN.md's substitution table: every generator here stands in for a
data source the paper used but that is unavailable offline, calibrated to
the paper's published aggregate statistics.
"""

from repro.synth import appgen, corpus, cvegen, history, papersurvey, profiles
from repro.synth.appgen import (
    GeneratorConfig,
    SyntheticApp,
    generate_app,
    generate_apps,
)
from repro.synth.corpus import Corpus, build_corpus
from repro.synth.cvegen import (
    generate_database,
    generate_profiles,
    generate_records,
)
from repro.synth.history import generate_history, history_for_app
from repro.synth.papersurvey import Paper, SurveyResult, generate_corpus, survey
from repro.synth.profiles import AppProfile

__all__ = [
    "AppProfile",
    "Corpus",
    "GeneratorConfig",
    "Paper",
    "SurveyResult",
    "SyntheticApp",
    "appgen",
    "build_corpus",
    "corpus",
    "cvegen",
    "generate_app",
    "generate_apps",
    "generate_corpus",
    "generate_database",
    "generate_history",
    "generate_profiles",
    "generate_records",
    "history",
    "history_for_app",
    "papersurvey",
    "profiles",
    "survey",
]
