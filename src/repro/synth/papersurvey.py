"""Figure-1 survey: synthetic paper corpus plus the survey classifier.

The paper surveys CCS, PLDI, SOSP, ASPLOS, and EuroSys proceedings and
counts papers whose security evaluation uses (a) lines of code — 384,
(b) CVE-report counts — 116, (c) formal verification or proof — 31.
We cannot crawl proceedings offline, so :func:`generate_corpus` emits
paper metadata (title + evaluation excerpt) with per-venue quotas pinned
to the published totals, and :func:`survey` re-derives the counts by
keyword classification over the generated text — exercising the same
classify-and-count pipeline the authors ran by hand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.synth import profiles as P

#: Evaluation styles the survey distinguishes.
STYLE_LOC = "loc"
STYLE_CVE = "cve"
STYLE_FORMAL = "formal"
STYLE_OTHER = "other"

_EXCERPTS: Dict[str, Tuple[str, ...]] = {
    STYLE_LOC: (
        "our trusted computing base is only {n} lines of code",
        "we reduce the TCB to {n} KLoC compared to the monolithic design",
        "the kernel portion comprises {n} lines of code (LoC)",
        "attack surface shrinks from {m} to {n} lines of code",
    ),
    STYLE_CVE: (
        "we analysed {n} CVE reports affecting the target application",
        "of the {n} vulnerabilities in the CVE database, our system stops {m}",
        "the CVE history of the daemon shows {n} memory-safety reports",
    ),
    STYLE_FORMAL: (
        "we formally verify the protocol in Coq",
        "the implementation is proved correct against the specification",
        "a machine-checked proof establishes noninterference",
        "we model-check the state machine and prove the invariant",
    ),
    STYLE_OTHER: (
        "throughput improves by {n}% over the baseline",
        "we evaluate latency on a {n}-node cluster",
        "the prototype sustains {n}k requests per second",
        "energy consumption drops by {n}% under the new scheduler",
    ),
}

_TITLE_WORDS = (
    "secure", "practical", "scalable", "modular", "efficient", "transparent",
    "isolation", "enclave", "microkernel", "hypervisor", "sandbox", "memory",
    "network", "storage", "consensus", "scheduler",
)


@dataclass(frozen=True)
class Paper:
    """One surveyed paper: venue, title, and its evaluation excerpt."""

    venue: str
    title: str
    excerpt: str
    style: str  # ground-truth evaluation style


def generate_corpus(seed: int = 0) -> List[Paper]:
    """Generate the survey corpus with per-venue quotas from profiles.py."""
    rng = random.Random(seed)
    papers: List[Paper] = []
    quota_tables = (
        (STYLE_LOC, P.SURVEY_LOC_PAPERS),
        (STYLE_CVE, P.SURVEY_CVE_PAPERS),
        (STYLE_FORMAL, P.SURVEY_FORMAL_PAPERS),
        (STYLE_OTHER, P.SURVEY_OTHER_PAPERS),
    )
    for style, quotas in quota_tables:
        for venue in P.SURVEY_VENUES:
            for _ in range(quotas[venue]):
                template = rng.choice(_EXCERPTS[style])
                excerpt = template.format(
                    n=rng.randint(2, 900), m=rng.randint(2, 900)
                )
                title = " ".join(
                    rng.choice(_TITLE_WORDS)
                    for _ in range(rng.randint(3, 5))
                ).title()
                papers.append(Paper(venue, title, excerpt, style))
    rng.shuffle(papers)
    return papers


# -- the survey classifier ----------------------------------------------------

import re as _re

_LOC_PATTERN = _re.compile(
    r"lines of code|\bk?loc\b|\btcb\b", _re.IGNORECASE
)
_CVE_PATTERN = _re.compile(r"\bcve\b|\bvulnerabilit", _re.IGNORECASE)
_FORMAL_PATTERN = _re.compile(
    r"\bformally\b|\bverif\w*|\bproofs?\b|\bproved?\b|\bprove\b"
    r"|model-check|machine-checked",
    _re.IGNORECASE,
)


def classify(paper: Paper) -> str:
    """Keyword classification of one paper's evaluation style.

    Formal wins over CVE wins over LoC when several keywords appear,
    matching the paper's bucketing (a verified system is counted as
    verified even if it also reports its size).
    """
    # The survey judges how a paper *evaluates*, so only the
    # evaluation excerpt is classified; titles are rhetoric.
    text = paper.excerpt
    if _FORMAL_PATTERN.search(text):
        return STYLE_FORMAL
    if _CVE_PATTERN.search(text):
        return STYLE_CVE
    if _LOC_PATTERN.search(text):
        return STYLE_LOC
    return STYLE_OTHER


@dataclass(frozen=True)
class SurveyResult:
    """Figure 1's data: per-style totals and per-venue breakdown."""

    totals: Dict[str, int]
    by_venue: Dict[str, Dict[str, int]]
    accuracy: float  # classifier agreement with generation ground truth


def survey(papers: Sequence[Paper]) -> SurveyResult:
    """Run the keyword survey over a corpus (Figure 1's pipeline)."""
    totals = {STYLE_LOC: 0, STYLE_CVE: 0, STYLE_FORMAL: 0, STYLE_OTHER: 0}
    by_venue: Dict[str, Dict[str, int]] = {
        venue: dict(totals) for venue in P.SURVEY_VENUES
    }
    correct = 0
    for paper in papers:
        style = classify(paper)
        totals[style] += 1
        by_venue[paper.venue][style] += 1
        if style == paper.style:
            correct += 1
    return SurveyResult(
        totals=totals,
        by_venue=by_venue,
        accuracy=correct / len(papers) if papers else 0.0,
    )
