"""Synthetic commit-history generator (for churn/developer-activity metrics).

Substitutes for version-control history (DESIGN.md): Shin et al.'s
experiment — the paper's §4 anchor — needs per-file churn and developer
activity. Histories follow the regularities Shin et al. report:
vulnerable files receive more commits, more churn, and more distinct
authors than neutral files.
"""

from __future__ import annotations

import math
import random
from typing import FrozenSet, List, Sequence

from repro.analysis.churn import Commit, CommitHistory, FileDelta
from repro.synth.appgen import SyntheticApp
from repro.synth.profiles import AppProfile

#: Multipliers applied to vulnerable files (Shin et al.'s direction).
VULNERABLE_COMMIT_FACTOR = 1.7
VULNERABLE_CHURN_FACTOR = 1.5
VULNERABLE_AUTHOR_FACTOR = 1.4


def _sigmoid(z: float) -> float:
    return 1.0 / (1.0 + math.exp(-z))


def generate_history(
    profile: AppProfile,
    files: Sequence[str],
    vulnerable_files: FrozenSet[str],
    seed: int = 0,
) -> CommitHistory:
    """Generate a commit history over ``files`` for one application.

    Commit volume scales with the app's churn factor and developer count;
    vulnerable files get the Shin-style multipliers. The history spans the
    profile's ``history_years``.
    """
    rng = random.Random(f"{seed}:{profile.name}:history")
    span_days = max(int(profile.history_years * 365.25), 30)
    authors = [f"dev{i}" for i in range(profile.n_developers)]
    churn_scale = 0.6 + 0.9 * _sigmoid(profile.z_churn)
    base_commits = max(4, int(6 * churn_scale * math.sqrt(len(files))))

    history = CommitHistory()
    for path in sorted(files):
        vulnerable = path in vulnerable_files
        n_commits = base_commits
        if vulnerable:
            n_commits = int(n_commits * VULNERABLE_COMMIT_FACTOR)
        n_commits = max(2, int(rng.gauss(n_commits, n_commits * 0.25)))
        # Vulnerable files attract a wider slice of the team.
        author_pool_size = max(
            1,
            min(
                len(authors),
                int(
                    (2 + len(authors) * 0.25)
                    * (VULNERABLE_AUTHOR_FACTOR if vulnerable else 1.0)
                ),
            ),
        )
        pool = rng.sample(authors, author_pool_size)
        for _ in range(n_commits):
            churn = max(1, int(rng.expovariate(1.0 / (20 * churn_scale))))
            if vulnerable:
                churn = int(churn * VULNERABLE_CHURN_FACTOR) + 1
            added = max(1, int(churn * rng.uniform(0.4, 0.8)))
            deleted = max(0, churn - added)
            history.add(
                Commit(
                    author=rng.choice(pool),
                    day=rng.randint(0, span_days),
                    deltas=(FileDelta(path, added, deleted),),
                )
            )
    return history


def history_for_app(app: SyntheticApp, seed: int = 0) -> CommitHistory:
    """Generate the history matching a generated application's files."""
    return generate_history(
        app.profile,
        [f.path for f in app.codebase],
        app.vulnerable_files,
        seed=seed,
    )
