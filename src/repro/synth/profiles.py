"""Calibration constants for the synthetic corpus.

Every constant here is pinned to a number the paper publishes, so the
synthetic corpus reproduces the paper's aggregate statistics by
construction while leaving all *per-application* structure to the
generators:

- 164 applications with >= 5 years of CVE history: 126 C, 20 C++,
  6 Python, 12 Java (§3.1);
- 5,975 vulnerabilities across them (§5.1);
- Figure 2 trend: log10(#vuln) = 0.17 + 0.39 * log10(kLoC), R² = 24.66%;
- Figure 1 survey totals: 384 LoC papers, 116 CVE papers, 31 formally
  verified, across CCS, PLDI, SOSP, ASPLOS, EuroSys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

#: Applications per primary language (paper §3.1).
APPS_PER_LANGUAGE: Dict[str, int] = {"c": 126, "cpp": 20, "python": 6, "java": 12}

#: Total applications in the converging-history sample.
N_APPS = sum(APPS_PER_LANGUAGE.values())  # 164

#: Total vulnerability reports in the training set (§5.1).
N_VULNERABILITIES = 5975

#: Figure 2's published log-log trend and fit quality.
FIG2_INTERCEPT = 0.17
FIG2_SLOPE = 0.39
FIG2_R_SQUARED = 0.2466

#: Application sizes: 10 kLoC to 10,000 kLoC, log-uniform. Figure 2's
#: x-axis spans 1..10,000 kLoC, but apps small enough to sit below 10 kLoC
#: while accumulating a 5-year CVE history are rare, and a floor of
#: 10 kLoC is what makes the published intercept reachable once every
#: selected app must have >= 2 reports (see cvegen module docstring).
LOG10_KLOC_MIN = 0.9
LOG10_KLOC_MAX = 4.0

#: Variance of log10(kLoC) under a log-uniform size distribution.
_KLOC_LOG_VAR = (LOG10_KLOC_MAX - LOG10_KLOC_MIN) ** 2 / 12.0

#: Variance of the trend component of log10(#vulns).
SIGNAL_VARIANCE = FIG2_SLOPE**2 * _KLOC_LOG_VAR

#: Residual variance required for the published R²:
#:   R² = signal / (signal + residual)  =>  residual = signal (1-R²)/R².
RESIDUAL_VARIANCE = SIGNAL_VARIANCE * (1.0 - FIG2_R_SQUARED) / FIG2_R_SQUARED

#: The residual splits into latent *code-property* factors (which the full
#: feature vector can see — the paper's thesis is that aggregation
#: recovers them) and irreducible noise. 80/20 keeps LoC-only R² at the
#: published value while letting the trained model do far better.
LATENT_FRACTION = 0.8
LATENT_STD = math.sqrt(RESIDUAL_VARIANCE * LATENT_FRACTION)
NOISE_STD = math.sqrt(RESIDUAL_VARIANCE * (1.0 - LATENT_FRACTION))

#: Per-language offsets on log10(#vulns), mean-zero-ish over the sample.
#: The paper observes Java projects trend lower; others show no clear
#: language effect (§3.1).
LANGUAGE_OFFSET: Dict[str, float] = {
    "c": 0.02,
    "cpp": 0.02,
    "python": 0.0,
    "java": -0.35,
}

#: Weights of the latent factors inside the residual (unit-variance parts).
#: Order: complexity density, dangerous-call density, attack surface,
#: churn rate. Normalised so their combined variance is LATENT_STD².
LATENT_WEIGHTS: Tuple[float, ...] = (0.45, 0.40, 0.35, 0.25)

#: CWE mixes per primary language (weights, normalised at sample time).
CWE_MIX: Dict[str, Dict[int, float]] = {
    "c": {121: 0.22, 122: 0.10, 125: 0.10, 787: 0.10, 476: 0.10, 190: 0.08,
          134: 0.06, 416: 0.08, 78: 0.05, 20: 0.06, 200: 0.05},
    "cpp": {121: 0.18, 122: 0.10, 125: 0.12, 787: 0.12, 476: 0.10, 416: 0.10,
            190: 0.07, 134: 0.04, 78: 0.05, 20: 0.07, 200: 0.05},
    "python": {78: 0.15, 95: 0.12, 89: 0.15, 22: 0.12, 20: 0.15, 798: 0.08,
               327: 0.08, 502: 0.10, 200: 0.05},
    "java": {89: 0.16, 79: 0.14, 502: 0.14, 611: 0.10, 22: 0.10, 20: 0.12,
             287: 0.08, 327: 0.08, 200: 0.08},
}

#: History span (years) for converging-history applications.
HISTORY_YEARS_MIN = 5.0
HISTORY_YEARS_MAX = 18.0

#: Figure 1 survey calibration: per-venue counts of papers using each
#: evaluation style. Totals: LoC 384, CVE 116, formal 31 (§1). The
#: per-venue split is not published; the quotas below sum to the totals.
SURVEY_VENUES: Tuple[str, ...] = ("CCS", "PLDI", "SOSP", "ASPLOS", "EuroSys")
SURVEY_LOC_PAPERS: Dict[str, int] = {
    "CCS": 140, "PLDI": 48, "SOSP": 76, "ASPLOS": 64, "EuroSys": 56,
}
SURVEY_CVE_PAPERS: Dict[str, int] = {
    "CCS": 62, "PLDI": 8, "SOSP": 18, "ASPLOS": 14, "EuroSys": 14,
}
SURVEY_FORMAL_PAPERS: Dict[str, int] = {
    "CCS": 9, "PLDI": 10, "SOSP": 6, "ASPLOS": 3, "EuroSys": 3,
}
#: Papers in the survey that use none of the three styles (filler mass so
#: the classifier has true negatives to reject).
SURVEY_OTHER_PAPERS: Dict[str, int] = {
    "CCS": 60, "PLDI": 40, "SOSP": 30, "ASPLOS": 35, "EuroSys": 25,
}

assert sum(SURVEY_LOC_PAPERS.values()) == 384
assert sum(SURVEY_CVE_PAPERS.values()) == 116
assert sum(SURVEY_FORMAL_PAPERS.values()) == 31


@dataclass(frozen=True)
class AppProfile:
    """Latent description of one synthetic application.

    The latent z-factors are standard-normal-ish deviations that drive
    *both* the app's vulnerability history and its generated source code,
    so the measurable code properties genuinely carry the signal the
    model is supposed to recover.
    """

    name: str
    language: str
    kloc: float  # nominal size, as cloc would report on the full app
    z_complexity: float  # branching/nesting density deviation
    z_danger: float  # dangerous-API call density deviation
    z_surface: float  # attack-surface (network/exec channel) deviation
    z_churn: float  # code-churn intensity deviation
    n_vulns: int
    history_years: float
    network_facing: bool
    n_developers: int

    @property
    def log10_kloc(self) -> float:
        return math.log10(self.kloc)
