"""One-call construction of the full calibrated corpus.

``build_corpus`` is the entry point the benchmarks and examples use: it
produces the 164 application profiles, their sampled codebases, commit
histories, and the CVE database, all deterministically from one seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.analysis.churn import CommitHistory
from repro.cve.database import CVEDatabase
from repro.synth.appgen import GeneratorConfig, SyntheticApp, generate_apps
from repro.synth.cvegen import generate_database, generate_profiles
from repro.synth.history import history_for_app
from repro.synth.profiles import AppProfile


@dataclass
class Corpus:
    """The complete synthetic testbed input."""

    apps: List[SyntheticApp]
    histories: Dict[str, CommitHistory]
    database: CVEDatabase
    seed: int

    @property
    def profiles(self) -> List[AppProfile]:
        return [app.profile for app in self.apps]

    def app(self, name: str) -> SyntheticApp:
        """Look up one application by name."""
        for candidate in self.apps:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def history(self, name: str) -> CommitHistory:
        """Commit history for one application."""
        return self.histories[name]


def build_corpus(
    seed: int = 0,
    limit: Optional[int] = None,
    config: Optional[GeneratorConfig] = None,
    workers: Optional[int] = None,
) -> Corpus:
    """Build the calibrated corpus.

    Args:
        seed: master seed; everything downstream is deterministic in it.
        limit: generate codebases/histories for only the first N
            applications (handy in tests — code generation dominates the
            cost). The CVE database always covers all 164 profiles so the
            corpus-level calibration statistics stay valid.
        config: source-generator tunables.
        workers: fan app generation out across this many processes
            (per-app seeding keeps the result independent of the worker
            count); None reads ``REPRO_WORKERS`` from the environment.
    """
    if workers is None:
        from repro.engine.scheduler import WORKERS_ENV

        try:
            workers = int(os.environ.get(WORKERS_ENV, "1"))
        except ValueError:
            workers = 1
    with obs.span("corpus.build", seed=seed,
                  limit=-1 if limit is None else limit):
        with obs.span("corpus.profiles"):
            profiles = generate_profiles(seed=seed)
        with obs.span("corpus.database"):
            database = generate_database(profiles, seed=seed)
        if limit is not None:
            profiles = profiles[:limit]
        with obs.span("corpus.apps", apps=len(profiles), workers=workers):
            apps = generate_apps(profiles, seed=seed, config=config,
                                 workers=workers)
        with obs.span("corpus.histories"):
            histories = {
                app.name: history_for_app(app, seed=seed) for app in apps
            }
    obs.incr("corpus.apps_generated", len(apps))
    return Corpus(apps=apps, histories=histories, database=database, seed=seed)
