"""Version-evolution generator: successive versions of an application.

§5.3's headline workflow is evaluating a *code change*: "whether a code
change has raised or lowered the risk than the previous version of the
code." To validate that workflow at corpus scale we need version pairs
with known ground truth. Given a generated application, this module
produces a successor version by applying one of three labelled change
kinds:

- ``harden``  — remove dangerous call sites (risk should go down);
- ``regress`` — inject a new risky module (risk should go up);
- ``neutral`` — refactor-ish noise: comments and benign arithmetic
  (risk should stay put).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.lang.sourcefile import Codebase
from repro.synth.appgen import _DANGEROUS_CALLS, _EXTENSION, SyntheticApp

CHANGE_KINDS = ("harden", "regress", "neutral")

#: Replacement text per language for a removed dangerous call.
_SAFE_REPLACEMENT = {
    "c": "snprintf(buf, sizeof(buf), \"%d\", 0);",
    "cpp": "snprintf(buf, sizeof(buf), \"%d\", 0);",
    "java": "stmt.query(SAFE_QUERY);",
    "python": "result = result + 0",
}

_REGRESSION_MODULE = {
    "c": """\
#include <string.h>
#include <stdlib.h>

static int imported_handler(char *request) {{
    char buf[{size}];
    strcpy(buf, request);
    sprintf(buf, request);
    system(request);
    gets(buf);
    return 0;
}}
""",
    "cpp": """\
#include <cstring>

static int imported_handler(char *request) {{
    char buf[{size}];
    strcpy(buf, request);
    memcpy(buf, request, n * m);
    system(request);
    return 0;
}}
""",
    "java": """\
public class ImportedHandler {{
    public int handle(String key) {{
        stmt.query("SELECT * FROM t WHERE k=" + key);
        Runtime.exec(key);
        int pad{size} = 0;
        return pad{size};
    }}
}}
""",
    "python": """\
import os

def imported_handler(request):
    eval(request)
    os.system(request)
    pad{size} = 0
    return pad{size}
""",
}


@dataclass(frozen=True)
class VersionPair:
    """A (before, after) version pair with its ground-truth label."""

    app_name: str
    kind: str  # harden | regress | neutral
    before: Codebase
    after: Codebase
    #: Net dangerous call sites added (negative for hardening).
    danger_delta: int


def _dangerous_lines(language: str) -> Tuple[str, ...]:
    return tuple(
        call if language == "python" else call + ";"
        for call in _DANGEROUS_CALLS[language]
    )


def _apply_change(
    sources: Dict[str, str],
    language: str,
    kind: str,
    rng: random.Random,
    handler_offset: int = 0,
) -> int:
    """Apply one labelled change to ``sources`` in place.

    Returns the net dangerous-call-site delta. ``handler_offset`` shifts
    the injected-module numbering so chained ``regress`` steps add *new*
    handlers instead of overwriting the previous step's
    (:func:`version_chain` passes the count already present; ``evolve``
    passes 0 and stays byte-for-byte what it always produced).
    """
    if kind not in CHANGE_KINDS:
        raise ValueError(f"unknown change kind: {kind!r}")
    danger_delta = 0

    if kind == "harden":
        markers = _dangerous_lines(language)
        for path in sorted(sources):
            lines = sources[path].splitlines()
            new_lines: List[str] = []
            for line in lines:
                stripped = line.strip()
                if stripped in markers and rng.random() < 0.8:
                    indent = line[: len(line) - len(line.lstrip())]
                    new_lines.append(indent + _SAFE_REPLACEMENT[language])
                    danger_delta -= 1
                else:
                    new_lines.append(line)
            sources[path] = "\n".join(new_lines) + "\n"
    elif kind == "regress":
        # The imported module scales with the application: one risky
        # handler per ~2 existing files, so the change is material at the
        # app level (a one-liner in a million-line app would rightly be
        # invisible to an aggregate metric).
        n_handlers = max(3, len(sources) // 2 + 1)
        for h in range(handler_offset, handler_offset + n_handlers):
            chunk = _REGRESSION_MODULE[language].format(
                size=rng.randint(8, 64)
            )
            chunk = chunk.replace("imported_handler",
                                  f"imported_handler_{h}")
            chunk = chunk.replace("ImportedHandler",
                                  f"ImportedHandler{h}")
            sources[f"src/imported_{h}{_EXTENSION[language]}"] = chunk
            danger_delta += chunk.count("(") // 2  # rough site count
    else:  # neutral
        comment = "# maintenance pass" if language == "python" \
            else "/* maintenance pass */"
        for path in sorted(sources):
            if rng.random() < 0.5:
                sources[path] = comment + "\n" + sources[path]

    return danger_delta


def evolve(app: SyntheticApp, kind: str, seed: int = 0) -> VersionPair:
    """Produce the successor version of ``app`` under change ``kind``."""
    rng = random.Random(f"{seed}:{app.name}:{kind}")
    sources: Dict[str, str] = {f.path: f.text for f in app.codebase}
    danger_delta = _apply_change(
        sources, app.profile.language, kind, rng)
    after = Codebase.from_sources(app.name, sources)
    return VersionPair(
        app_name=app.name,
        kind=kind,
        before=app.codebase,
        after=after,
        danger_delta=danger_delta,
    )


def version_chain(
    app: SyntheticApp,
    steps: int,
    seed: int = 0,
    kinds: Tuple[str, ...] = CHANGE_KINDS,
) -> List[Codebase]:
    """A deterministic version *history*: ``[v0, v1, ..., v_steps]``.

    Step ``k`` (producing ``v_{k+1}``) applies ``kinds[k % len(kinds)]``
    to the previous version, with its own rng stream so inserting or
    dropping a step never reshuffles later ones. The gate surfaces
    resolve ``synth:NAME@K`` specs through this, so two processes (or
    the CLI and the daemon) asking for the same version always get
    byte-identical trees.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    chain = [app.codebase]
    language = app.profile.language
    sources: Dict[str, str] = {f.path: f.text for f in app.codebase}
    for k in range(steps):
        kind = kinds[k % len(kinds)]
        rng = random.Random(f"{seed}:{app.name}:{kind}:{k}")
        offset = sum(1 for path in sources
                     if path.startswith("src/imported_"))
        _apply_change(sources, language, kind, rng,
                      handler_offset=offset)
        chain.append(Codebase.from_sources(app.name, sources))
    return chain


def version_pairs(
    apps, seed: int = 0, kinds: Tuple[str, ...] = CHANGE_KINDS
) -> List[VersionPair]:
    """One labelled version pair per (app, kind), round-robin over kinds."""
    pairs: List[VersionPair] = []
    for i, app in enumerate(apps):
        kind = kinds[i % len(kinds)]
        pairs.append(evolve(app, kind, seed=seed))
    return pairs
