"""Calibrated synthetic CVE-history generator.

Substitutes for the CVE/NVD dump the paper trains on (see DESIGN.md).
The generator reproduces, by construction:

- the sample composition: 164 apps (126 C / 20 C++ / 6 Python / 12 Java),
  each with >= 5 years of history;
- the total report count: exactly 5,975;
- Figure 2's log-log trend: slope ~= 0.39, intercept ~= 0.17,
  R² ~= 24.66%.

The published line, R², and total all constrain each other (Jensen's
inequality links the log-space fit to the arithmetic total), so the
generator enforces the trend and R² by exact projection in log space,
draws mean-zero *left-skewed* residuals (which keep the arithmetic total
low at fixed log-space statistics), and bisects the top of the app-size
range until the total lands on 5,975 exactly. Residual variance splits
into four latent code-property factors (complexity, dangerous calls,
attack surface, churn) plus irreducible noise — the same factors that
drive the source-code generator, which is what makes the paper's
"aggregate many metrics" thesis *true in this corpus* and recoverable by
the model.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

from repro.cve.cvss import CvssV3
from repro.cve.database import CVEDatabase
from repro.cve.records import CVERecord
from repro.synth import profiles as P

_LN10 = math.log(10.0)

#: Corpus epoch for report days (day 0 ~ 1999-01-01); ids use the year.
EPOCH_YEAR = 1999
DAYS_PER_YEAR = 365.25
_CORPUS_SPAN_YEARS = 18.0


def _component_stds() -> List[float]:
    """Std-dev of each residual component (4 latent factors + noise)."""
    norm = math.sqrt(sum(w * w for w in P.LATENT_WEIGHTS))
    stds = [w / norm * P.LATENT_STD for w in P.LATENT_WEIGHTS]
    stds.append(P.NOISE_STD)
    return stds


def _fit_log_counts(log_sizes: List[float], counts: List[int]):
    """Figure 2 trend fit with the size axis already in log10 space.

    Counts are clipped to ``>= MIN_REPORTS`` before every fit, so the
    positive-coordinate filter of ``fit_loglog`` never drops a point and
    the fit reduces to plain OLS on the log10 pairs. Hoisting the
    (loop-invariant) log sizes out of the calibration loop is what makes
    this worth having over ``fit_loglog`` itself.
    """
    from repro.stats.regression import fit_linear

    return fit_linear(log_sizes, [math.log10(c) for c in counts])


def _gamma2_ppf(p: float) -> float:
    """Inverse CDF of Gamma(shape=2, scale=1), to double precision.

    The CDF has the closed form ``F(x) = 1 - exp(-x) * (1 + x)``, so a
    safeguarded Newton iteration converges in a handful of steps. Using
    it instead of ``scipy.stats.gamma.ppf`` keeps SciPy off the corpus
    hot path (its import alone costs more than the whole calibration)
    and agrees with it to ~1e-12 relative — far inside the tolerance of
    every calibration target, which the bisection re-hits regardless.
    """
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return math.inf
    q = 1.0 - p
    if p < 0.5:
        x = math.sqrt(2.0 * p)  # F(x) ~ x^2/2 near zero
    else:
        t = -math.log(q)
        x = t + math.log1p(t)  # F(x) ~ 1 - x e^-x in the tail
    for _ in range(60):
        ex = math.exp(-x)
        f = ex * (1.0 + x) - q
        d = -x * ex
        if d == 0.0:
            break
        nx = x - f / d
        if nx <= 0.0:
            nx = x / 2.0
        if abs(nx - x) <= 1e-16 * max(1.0, x):
            x = nx
            break
        x = nx
    return x


def _skewed_units(uniforms: List[List[float]], shape: float) -> List[List[float]]:
    """Deterministic mean-zero unit-variance left-skewed draws.

    Each uniform maps through the Gamma(shape, 1/shape) inverse CDF, so
    the calibration loop can re-evaluate the same underlying randomness at
    different skew levels.
    """
    scale = math.sqrt(shape)
    if shape == 2.0:
        return [
            [(1.0 - _gamma2_ppf(u) / shape) * scale for u in row]
            for row in uniforms
        ]
    from scipy.stats import gamma  # only non-default shapes need SciPy

    units: List[List[float]] = []
    for row in uniforms:
        g = gamma.ppf(row, shape) / shape
        units.append([(1.0 - gi) * scale for gi in g])
    return units


#: Gamma shape of the residual components: moderately left-skewed, which
#: keeps the arithmetic report total near the published value at the
#: published log-space statistics (module docstring) while the scatter
#: still looks like real CVE data.
RESIDUAL_SHAPE = 2.0


def _calibrate_counts(
    size_uniforms: List[float],
    uniforms: List[List[float]],
    offsets: List[float],
) -> Tuple[List[int], List[float], List[List[float]]]:
    """Construct sizes and counts whose *realized* statistics hit Figure 2.

    The published trend (slope, intercept) and R² are enforced by
    construction: sample residuals are orthogonalised against log-size,
    rescaled to the variance the target R² requires, and attached to the
    published line; a damped inner loop then compensates the small
    distortion that integer rounding and the >= MIN_REPORTS clip add.
    That leaves one free knob — the top of the (log-uniform) application
    size range — which a bisection tunes until the arithmetic total of
    reports matches the published 5,975. Bigger apps mean more reports at
    a fixed trend line, so the total is strictly monotone in the knob.

    Returns (counts, log10-kLoC sizes, latent unit draws per app).
    """
    import numpy as np

    stds = _component_stds()
    off = np.asarray(offsets)
    units = _skewed_units(uniforms, RESIDUAL_SHAPE)
    raw_resid = np.array(
        [sum(s * u for s, u in zip(stds, row)) for row in units]
    ) + off
    size_u = np.asarray(size_uniforms)

    def calibrated(log_kloc_max: float) -> Tuple[List[int], "np.ndarray"]:
        x = P.LOG10_KLOC_MIN + size_u * (log_kloc_max - P.LOG10_KLOC_MIN)
        x_centered = x - x.mean()
        x_var = float(np.var(x))
        signal_var = P.FIG2_SLOPE**2 * x_var
        base_var = signal_var * (1.0 - P.FIG2_R_SQUARED) / P.FIG2_R_SQUARED
        # Loop-invariant: only the counts change inside the damping loop.
        # The 10**x round trip keeps the exact floats fit_loglog produced.
        log_sizes = [math.log10(10**xi) for xi in x.tolist()]

        def counts_for(a: float, b: float, var: float) -> List[int]:
            resid = raw_resid - raw_resid.mean()
            beta = float(resid @ x_centered) / (len(x) * x_var)
            resid = resid - beta * x_centered
            resid = resid * math.sqrt(var / float(np.var(resid)))
            y = a + b * x + resid
            return [max(MIN_REPORTS, round(yi)) for yi in (10**y).tolist()]

        a, b, var = P.FIG2_INTERCEPT, P.FIG2_SLOPE, base_var
        counts = counts_for(a, b, var)
        for _ in range(40):
            fit = _fit_log_counts(log_sizes, counts)
            a += 0.7 * (P.FIG2_INTERCEPT - fit.intercept)
            b += 0.7 * (P.FIG2_SLOPE - fit.slope)
            r2 = min(max(fit.r_squared, 1e-3), 1.0 - 1e-3)
            var *= (
                (P.FIG2_R_SQUARED * (1.0 - r2))
                / ((1.0 - P.FIG2_R_SQUARED) * r2)
            ) ** -0.5
            counts = counts_for(a, b, var)
        return counts, x

    lo, hi = P.LOG10_KLOC_MIN + 0.5, P.LOG10_KLOC_MAX
    counts_lo, _ = calibrated(lo)
    counts_hi, _ = calibrated(hi)
    if not (sum(counts_lo) <= P.N_VULNERABILITIES <= sum(counts_hi)):
        raise RuntimeError(
            "published total outside achievable range "
            f"[{sum(counts_lo)}, {sum(counts_hi)}]"
        )
    for _ in range(40):
        mid = (lo + hi) / 2.0
        counts_mid, _ = calibrated(mid)
        if sum(counts_mid) > P.N_VULNERABILITIES:
            hi = mid
        else:
            lo = mid
    counts, x = calibrated((lo + hi) / 2.0)
    return _exact_total(counts, P.N_VULNERABILITIES), list(x), units


def generate_profiles(seed: int = 0) -> List[P.AppProfile]:
    """Generate the 164 calibrated application profiles."""
    rng = random.Random(seed)
    draws: List[dict] = []
    for language in sorted(P.APPS_PER_LANGUAGE):
        for _ in range(P.APPS_PER_LANGUAGE[language]):
            draws.append(
                {
                    "language": language,
                    "size_u": rng.random(),
                    "uniforms": [rng.random() for _ in range(5)],
                    "history": rng.uniform(
                        P.HISTORY_YEARS_MIN, P.HISTORY_YEARS_MAX
                    ),
                    "net_roll": rng.random(),
                }
            )
    offsets = [P.LANGUAGE_OFFSET[d["language"]] for d in draws]
    counts, log_klocs, units = _calibrate_counts(
        [d["size_u"] for d in draws],
        [d["uniforms"] for d in draws],
        offsets,
    )

    profiles: List[P.AppProfile] = []
    for index, (d, n_vulns, z, log_kloc) in enumerate(
        zip(draws, counts, units, log_klocs), start=1
    ):
        kloc = 10**log_kloc
        # Attack surface factor raises the odds of being network-facing.
        network = d["net_roll"] < _sigmoid(0.2 + 0.9 * z[2])
        profiles.append(
            P.AppProfile(
                name=f"{d['language']}-app-{index:03d}",
                language=d["language"],
                kloc=kloc,
                z_complexity=z[0],
                z_danger=z[1],
                z_surface=z[2],
                z_churn=z[3],
                n_vulns=n_vulns,
                history_years=d["history"],
                network_facing=network,
                n_developers=max(1, round(2 + kloc**0.45 + 2 * z[3])),
            )
        )
    return profiles


def _sigmoid(z: float) -> float:
    return 1.0 / (1.0 + math.exp(-z))


#: Every selected app needs >= 2 reports so its history *span* is defined
#: (the paper measures newest-minus-oldest over a >= 5-year window).
MIN_REPORTS = 2


def _exact_total(raw_counts: List[int], target: int) -> List[int]:
    """Nudge counts so they sum to exactly ``target``.

    The calibration already lands within a fraction of a percent, so the
    correction spreads +-1 adjustments over the largest counts, which are
    the least sensitive to them in log space.
    """
    counts = [max(MIN_REPORTS, c) for c in raw_counts]
    diff = target - sum(counts)
    order = sorted(range(len(counts)), key=lambda i: -counts[i])
    step = 1 if diff > 0 else -1
    idx = 0
    guard = 0
    while diff != 0:
        i = order[idx % len(order)]
        if counts[i] + step >= MIN_REPORTS:
            counts[i] += step
            diff -= step
        idx += 1
        guard += 1
        if guard > 10 * target:
            raise RuntimeError("cannot reach target total; counts too small")
    return counts


# ---------------------------------------------------------------------------
# CVSS vector synthesis
# ---------------------------------------------------------------------------

_IMPACT_BY_CATEGORY: Dict[str, Tuple[str, str, str]] = {
    # (C, I, A) modal impacts per coarse CWE category.
    "memory": ("H", "H", "H"),
    "numeric": ("N", "H", "H"),
    "injection": ("H", "H", "L"),
    "crypto": ("H", "L", "N"),
    "access": ("H", "H", "N"),
    "state": ("N", "L", "H"),
    "input": ("L", "H", "N"),
    "info": ("H", "N", "N"),
}


def _choice(rng: random.Random, table: Dict[str, float]) -> str:
    roll = rng.random() * sum(table.values())
    acc = 0.0
    for key, weight in table.items():
        acc += weight
        if roll <= acc:
            return key
    return key  # numeric slack lands on the last key


def _sample_vector(
    rng: random.Random, profile: P.AppProfile, category: str
) -> CvssV3:
    av = _choice(
        rng,
        {"N": 3.0 if profile.network_facing else 0.8, "A": 0.4, "L": 1.2,
         "P": 0.1},
    )
    # Dangerous-API-heavy code yields easier, higher-impact exploits: AC
    # skews Low and impacts stick to the weakness class's modal values.
    danger = _sigmoid(profile.z_danger)
    ac = _choice(rng, {"L": 1.4 + 1.4 * danger, "H": 1.0})
    pr = _choice(rng, {"N": 1.4 + 1.4 * danger, "L": 1.2, "H": 0.4})
    ui = _choice(rng, {"N": 2.5, "R": 1.0})
    scope = _choice(rng, {"U": 3.0, "C": 0.6})
    modal_c, modal_i, modal_a = _IMPACT_BY_CATEGORY[category]

    def impact(modal: str) -> str:
        return modal if rng.random() < 0.5 + 0.4 * danger else _choice(
            rng, {"H": 1.0, "L": 1.0, "N": 1.0}
        )

    maturity = _choice(rng, {"X": 2.0, "H": 0.5, "F": 1.0, "P": 1.5, "U": 1.0})
    return CvssV3(
        attack_vector=av,
        attack_complexity=ac,
        privileges_required=pr,
        user_interaction=ui,
        scope=scope,
        confidentiality=impact(modal_c),
        integrity=impact(modal_i),
        availability=impact(modal_a),
        exploit_maturity=maturity,
    )


def generate_records(
    profile: P.AppProfile, seed: int = 0, id_offset: int = 0
) -> List[CVERecord]:
    """Generate ``profile.n_vulns`` CVE records for one application.

    Report days spread uniformly over the app's history window so the
    span (newest minus oldest) matches ``history_years``; ids are unique
    given a distinct ``id_offset`` per app.
    """
    rng = random.Random(f"{seed}:{profile.name}")
    mix = P.CWE_MIX[profile.language]
    cwe_ids = sorted(mix)
    weights = [mix[c] for c in cwe_ids]
    # Dangerous-call-heavy apps skew further toward their language's top
    # weakness classes (e.g. more CWE-121 for risky C apps).
    sharpen = max(0.4, 1.0 + 0.35 * profile.z_danger)
    weights = [w**sharpen for w in weights]

    span_days = profile.history_years * DAYS_PER_YEAR
    latest_start = max(0.0, (_CORPUS_SPAN_YEARS * DAYS_PER_YEAR) - span_days)
    start = rng.uniform(0.0, latest_start)
    records: List[CVERecord] = []
    n = profile.n_vulns
    for i in range(n):
        if n == 1:
            day = start
        else:
            # Pin the first and last report to the window edges so the
            # history span is exact; the rest land uniformly inside.
            if i == 0:
                day = start
            elif i == n - 1:
                day = start + span_days
            else:
                day = start + rng.random() * span_days
        day_int = int(day)
        year = EPOCH_YEAR + int(day / DAYS_PER_YEAR)
        cwe = rng.choices(cwe_ids, weights=weights)[0]
        from repro.cve import cwe as cwe_mod

        category = cwe_mod.category_of(cwe)
        vector = _sample_vector(rng, profile, category)
        records.append(
            CVERecord(
                cve_id=f"CVE-{year}-{10000 + id_offset + i}",
                app=profile.name,
                day=day_int,
                cvss=vector,
                cwe_id=cwe,
                description=f"{category} weakness in {profile.name}",
            )
        )
    return records


def generate_database(
    profiles: Sequence[P.AppProfile], seed: int = 0
) -> CVEDatabase:
    """Generate the full calibrated CVE database for a profile set."""
    db = CVEDatabase()
    offset = 0
    for profile in profiles:
        for record in generate_records(profile, seed=seed, id_offset=offset):
            db.add(record)
        offset += profile.n_vulns
    return db
