#!/usr/bin/env python3
"""Shared daemon-boot plumbing for the smoke and load scripts.

Every serve-flavoured CI leg used to roll its own boot loop, and the
flakiest failure mode in the suite was always the same one: the daemon
subprocess wrote stderr into a ``subprocess.PIPE`` nobody drained, the
pipe filled, and the daemon blocked mid-boot until the poll deadline
shrugged with an unexplained timeout. This module fixes that once:

- stderr goes to a *file* (unbounded, never blocks the child), and its
  full contents ride along in every failure message;
- boot is a bounded-deadline poll against ``/healthz`` — no fixed
  sleeps — that also notices the daemon dying early and reports its
  exit code plus captured stderr instead of a generic timeout.

Import it from a sibling script (``scripts/`` is the script's own
directory, so a plain ``import smokeboot`` works when run as
``python scripts/serve_smoke.py``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from typing import List, Optional, Tuple

DEFAULT_BOOT_TIMEOUT = 60.0


class DaemonError(SystemExit):
    """A daemon lifecycle step failed; the message is print-ready."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


def cli_env() -> dict:
    """The subprocess environment with ``src`` on ``PYTHONPATH``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return env


def captured_stderr(stderr_path: str) -> str:
    try:
        with open(stderr_path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return "<stderr file unreadable>"


def boot_daemon(
    argv: List[str],
    base_url: str,
    stderr_path: str,
    cwd: Optional[str] = None,
    env: Optional[dict] = None,
    boot_timeout: float = DEFAULT_BOOT_TIMEOUT,
) -> Tuple[subprocess.Popen, dict]:
    """Start a daemon subprocess and wait for ``/healthz`` to answer.

    Polls with a bounded deadline instead of a fixed sleep; returns
    ``(process, health_document)`` once the daemon is up. Raises
    :class:`DaemonError` — with the daemon's captured stderr in the
    message — if the process dies during boot or the deadline passes.
    """
    stderr_handle = open(stderr_path, "w", encoding="utf-8")
    try:
        process = subprocess.Popen(
            argv, cwd=cwd, env=env or cli_env(),
            stdout=subprocess.DEVNULL, stderr=stderr_handle)
    finally:
        # The child owns the descriptor now; the parent's handle would
        # only keep the file open past the child's lifetime.
        stderr_handle.close()
    deadline = time.monotonic() + boot_timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise DaemonError(
                f"daemon died during boot (exit {process.returncode});"
                f" stderr:\n{captured_stderr(stderr_path)}")
        try:
            with urllib.request.urlopen(f"{base_url}/healthz",
                                        timeout=5) as resp:
                return process, json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, ConnectionError, OSError,
                json.JSONDecodeError):
            time.sleep(0.25)
    process.kill()
    process.wait(timeout=10)
    raise DaemonError(
        f"/healthz not answering within {boot_timeout:.0f}s; daemon "
        f"stderr:\n{captured_stderr(stderr_path)}")


def shutdown_daemon(process: subprocess.Popen, stderr_path: str,
                    timeout: float = 30.0) -> None:
    """SIGTERM the daemon and require a clean exit code 0.

    Raises :class:`DaemonError` (with captured stderr) on a timeout or
    a non-zero exit.
    """
    import signal

    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)
        raise DaemonError(
            f"daemon did not exit within {timeout:.0f}s of SIGTERM; "
            f"stderr:\n{captured_stderr(stderr_path)}")
    if code != 0:
        raise DaemonError(
            f"daemon exited {code} after SIGTERM; stderr:\n"
            f"{captured_stderr(stderr_path)}")


def kill_quietly(process: subprocess.Popen) -> None:
    """Best-effort cleanup for ``finally`` blocks."""
    if process.poll() is None:
        process.kill()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            pass


if __name__ == "__main__":
    print("smokeboot is a helper module for the smoke scripts, "
          "not a script itself", file=sys.stderr)
    raise SystemExit(2)
