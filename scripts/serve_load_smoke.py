#!/usr/bin/env python3
"""The CI serve-load leg: loadgen + SLO gate against both tiers.

Trains a small model, then measures ``/analyze`` throughput end to
end, daemon by daemon:

1. the threaded tier (``--server thread``, single engine lock) at
   concurrency 8 — the baseline the engine pool must beat;
2. the async tier (engine pool sized to the host, capped at 4) at
   concurrency 8 — must reach at least twice the baseline throughput
   on a multi-core host (the pool's whole point);
3. the async tier at concurrency 16 — the overload leg: high
   concurrency must produce bounded latency and clean 503 shedding,
   never errors, and the live daemon must then pass
   ``repro slo-check --url`` against the committed latency/shed-rate
   rules.

Both daemons run ``--no-cache`` so every request pays the real
extraction cost — a warm feature cache would hide the concurrency
model entirely. Reports land in ``loadgen-*.json`` (one per leg, CI
uploads them as artifacts) and every leg's metrics are merged into
``BENCH_run.json`` under the ``serving`` section.

Run locally from the repo root:
``PYTHONPATH=src python scripts/serve_load_smoke.py``. On a
single-core host the >= 2x scaling assertion is reported but not
enforced (there is nothing to scale onto); CI runners are multi-core,
so the gate is real where it matters.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from smokeboot import (  # noqa: E402 — sibling helper module
    DaemonError,
    boot_daemon,
    cli_env,
    kill_quietly,
    shutdown_daemon,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TARGET_TREE = os.path.join("src", "repro", "serve")
DURATION = float(os.environ.get("SERVE_LOAD_DURATION", "8"))
WARMUP = float(os.environ.get("SERVE_LOAD_WARMUP", "2"))
POOL_SIZE = int(os.environ.get("SERVE_LOAD_POOL", str(min(4, os.cpu_count() or 1))))

SLO_RULES = {
    "slo": [
        {
            "name": "analyze-p99",
            "kind": "latency",
            "histogram": "serve.analyze.seconds",
            "stat": "p99",
            "max_seconds": 30.0,
        },
        {
            "name": "pool-shed-rate",
            "kind": "ratio_max",
            "numerator": "serve.pool.shed",
            "denominator": "serve.requests",
            "max_ratio": 0.25,
        },
        {
            "name": "loop-shed-rate",
            "kind": "ratio_max",
            "numerator": "serve.aio.shed",
            "denominator": "serve.requests",
            "max_ratio": 0.25,
        },
        {
            "name": "server-error-budget",
            "kind": "counter_max",
            "counter": "serve.errors.500",
            "max_value": 0,
        },
    ]
}


def fail(message):
    print(f"serve-load: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def step(message):
    print(f"serve-load: {message}", flush=True)


def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT,
        env=cli_env(),
        capture_output=True,
        text=True,
    )


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def run_loadgen(base, concurrency, label, report):
    """One loadgen run against a live daemon; returns its summary."""
    result = subprocess.run(
        [
            sys.executable,
            os.path.join("scripts", "loadgen.py"),
            "--url",
            base,
            "--endpoint",
            "/analyze",
            "--payload",
            json.dumps({"path": TARGET_TREE}),
            "--concurrency",
            str(concurrency),
            "--duration",
            str(DURATION),
            "--warmup",
            str(WARMUP),
            "--report",
            report,
            "--bench-json",
            "BENCH_run.json",
            "--label",
            label,
        ],
        cwd=REPO_ROOT,
        env=cli_env(),
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        fail(
            f"loadgen ({label}) exited {result.returncode}:\n"
            f"{result.stdout}\n{result.stderr}"
        )
    with open(os.path.join(REPO_ROOT, report), encoding="utf-8") as f:
        summary = json.load(f)
    step(
        f"{label}: {summary['throughput_rps']:.1f} req/s, "
        f"p50 {summary['latency_ms']['p50']:.0f} ms, "
        f"p99 {summary['latency_ms']['p99']:.0f} ms, "
        f"shed {summary['shed']}, errors {summary['errors']}"
    )
    if summary["errors"]:
        fail(f"{label}: {summary['errors']} hard errors under load")
    if not summary["ok"]:
        fail(f"{label}: no successful requests at all")
    return summary


def serve_argv(model, port, tier):
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--model",
        model,
        "--port",
        str(port),
        "--server",
        tier,
        "--no-cache",
    ]
    if tier == "async":
        argv += ["--pool-size", str(POOL_SIZE)]
    return argv


def main():
    workdir = tempfile.mkdtemp(prefix="serve-load-")
    model = os.path.join(workdir, "model.pkl")
    slo_path = os.path.join(workdir, "slo.json")
    with open(slo_path, "w", encoding="utf-8") as handle:
        json.dump(SLO_RULES, handle)

    step("training a small model")
    train = run_cli(
        "train",
        "--apps",
        "8",
        "--folds",
        "3",
        "--seed",
        "42",
        "--out",
        model,
    )
    if train.returncode != 0:
        fail(f"train exited {train.returncode}:\n{train.stderr}")

    step("baseline: threaded tier (single engine lock), concurrency 8")
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    stderr_path = os.path.join(workdir, "thread.stderr")
    try:
        daemon, _ = boot_daemon(
            serve_argv(model, port, "thread"),
            base,
            stderr_path,
            cwd=REPO_ROOT,
        )
    except DaemonError as exc:
        fail(exc.message)
    try:
        thread_c8 = run_loadgen(
            base, 8, "analyze.thread.c8", "loadgen-thread-c8.json"
        )
        shutdown_daemon(daemon, stderr_path)
    except DaemonError as exc:
        fail(exc.message)
    finally:
        kill_quietly(daemon)

    step(f"async tier: engine pool of {POOL_SIZE}, concurrency 8 and 16")
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    stderr_path = os.path.join(workdir, "async.stderr")
    try:
        daemon, _ = boot_daemon(
            serve_argv(model, port, "async"),
            base,
            stderr_path,
            cwd=REPO_ROOT,
        )
    except DaemonError as exc:
        fail(exc.message)
    try:
        async_c8 = run_loadgen(
            base, 8, "analyze.async.c8", "loadgen-async-c8.json"
        )
        async_c16 = run_loadgen(
            base, 16, "analyze.async.c16", "loadgen-async-c16.json"
        )

        step("slo-check --url against the loaded async daemon")
        check = run_cli("slo-check", "--slo", slo_path, "--url", base)
        print(check.stdout, end="")
        if check.returncode != 0:
            fail(
                f"slo-check exited {check.returncode}:\n"
                f"{check.stdout}\n{check.stderr}"
            )
        shutdown_daemon(daemon, stderr_path)
    except DaemonError as exc:
        fail(exc.message)
    finally:
        kill_quietly(daemon)

    if async_c16["shed_rate"] > 0.25:
        fail(
            f"async c16 shed rate {async_c16['shed_rate']:.2f} "
            f"exceeds 0.25"
        )
    ratio = (
        async_c8["throughput_rps"] / thread_c8["throughput_rps"]
        if thread_c8["throughput_rps"]
        else float("inf")
    )
    cores = os.cpu_count() or 1
    step(
        f"throughput: thread {thread_c8['throughput_rps']:.1f} req/s "
        f"vs async {async_c8['throughput_rps']:.1f} req/s "
        f"({ratio:.2f}x, pool {POOL_SIZE}, {cores} cores)"
    )
    if cores >= 2 and POOL_SIZE >= 2:
        if ratio < 2.0:
            fail(
                f"engine pool scaled only {ratio:.2f}x over the "
                f"single-lock baseline (need >= 2x at concurrency 8)"
            )
    else:
        step("single-core host: >= 2x scaling gate reported, not enforced")

    step("PASS — load SLOs hold and the engine pool scales")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
