#!/usr/bin/env python3
"""Concurrent shared-cache smoke test (CI cache-shared leg).

Proves the SQLite cache backend does what it exists for: many
concurrent extraction processes sharing one warm cache do ~1x the
extraction work, not Nx, and every process reads back byte-identical
rows.

1. build K distinct synthetic source trees;
2. run two concurrent worker processes over all K trees against one
   `sqlite:` cache — worker A walks the trees forward, worker B in
   reverse, so they race hardest in the middle;
3. sum `engine.extracted` / `engine.cache.hits` over all 2K CLI
   invocations: total extraction work must be ~K (each tree computed
   once fleet-wide, modulo a small race window at the crossing point),
   with the other ~K served as hits;
4. require each tree's JSON payload to be byte-identical across both
   workers and to a fresh `--no-cache` recompute.

Any mismatch fails the script. Run locally from the repo root:
`PYTHONPATH=src python scripts/shared_cache_smoke.py`.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
N_TREES = 8
#: Concurrency slack: both workers may extract the tree where they
#: cross before either's row lands in the cache.
RACE_SLACK = 2


def fail(message: str) -> None:
    print(f"cache-shared-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def step(message: str) -> None:
    print(f"cache-shared-smoke: {message}", flush=True)


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    # The smoke must control caching exactly; never inherit a CI cache.
    env.pop("REPRO_CACHE_DIR", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)


def write_trees(root: str) -> list:
    """K small C trees with distinct content (distinct cache keys)."""
    trees = []
    for t in range(N_TREES):
        tree = os.path.join(root, f"tree{t:02d}")
        src = os.path.join(tree, "src")
        os.makedirs(src, exist_ok=True)
        for i in range(4):
            body = (f"int fn{t}_{i}(int a, int b) {{\n"
                    f"    int total = a + {t * 17 + i};\n"
                    f"    for (int j = 0; j < b; j++) {{\n"
                    f"        if ((j + {i}) % {t + 2} == 0) total += j;\n"
                    f"        else total -= {i + 1};\n"
                    f"    }}\n"
                    f"    return total;\n"
                    f"}}\n")
            with open(os.path.join(src, f"unit{i}.c"), "w") as handle:
                handle.write(body)
        trees.append(tree)
    return trees


def counter_value(profile_text: str, name: str) -> float:
    match = re.search(
        rf"counter\s+{re.escape(name)}\s+([0-9.eE+-]+)", profile_text)
    return float(match.group(1)) if match else 0.0


def worker(name: str, trees: list, cache_spec: str, out: dict) -> None:
    """Analyze every tree through the shared cache, recording results."""
    payloads = {}
    extracted = 0.0
    hits = 0.0
    for tree in trees:
        result = run_cli("analyze", tree, "--json",
                         "--cache-dir", cache_spec, "--profile")
        if result.returncode != 0:
            out["error"] = (f"worker {name}: analyze {tree} exited "
                            f"{result.returncode}:\n{result.stderr}")
            return
        payload, _, profile = result.stdout.partition(
            "\n\nrepro telemetry")
        if not profile:
            out["error"] = f"worker {name}: no telemetry report for {tree}"
            return
        payloads[os.path.basename(tree)] = payload + "\n"
        extracted += counter_value(profile, "engine.extracted")
        hits += counter_value(profile, "engine.cache.hits")
    out.update(payloads=payloads, extracted=extracted, hits=hits)


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="cache-shared-smoke-")
    trees = write_trees(workdir)
    cache_spec = f"sqlite:{os.path.join(workdir, 'shared.db')}"

    step(f"launching two concurrent workers over {N_TREES} trees "
         f"sharing {cache_spec}")
    forward: dict = {}
    reverse: dict = {}
    threads = [
        threading.Thread(target=worker,
                         args=("fwd", trees, cache_spec, forward)),
        threading.Thread(target=worker,
                         args=("rev", list(reversed(trees)), cache_spec,
                               reverse)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for out in (forward, reverse):
        if "error" in out:
            fail(out["error"])

    extracted = forward["extracted"] + reverse["extracted"]
    hits = forward["hits"] + reverse["hits"]
    step(f"fleet totals: extracted={extracted:g} hits={hits:g} "
         f"over {2 * N_TREES} invocations")
    if extracted + hits != 2 * N_TREES:
        fail(f"extracted+hits={extracted + hits:g}, "
             f"expected {2 * N_TREES} (a tree was neither computed "
             f"nor served?)")
    if extracted > N_TREES + RACE_SLACK:
        fail(f"extracted={extracted:g} > {N_TREES + RACE_SLACK} — the "
             f"shared cache is not deduplicating work across processes")
    if hits < N_TREES - RACE_SLACK:
        fail(f"hits={hits:g} < {N_TREES - RACE_SLACK} — warm rows are "
             f"not being served from the shared cache")

    step("diffing payloads across workers and against --no-cache")
    for tree in trees:
        name = os.path.basename(tree)
        if forward["payloads"][name] != reverse["payloads"][name]:
            fail(f"{name}: workers disagree on the payload bytes")
        fresh = run_cli("analyze", tree, "--json", "--no-cache")
        if fresh.returncode != 0:
            fail(f"fresh analyze {name} exited {fresh.returncode}:\n"
                 f"{fresh.stderr}")
        if forward["payloads"][name] != fresh.stdout:
            fail(f"{name}: shared-cache payload differs from a fresh "
                 f"--no-cache recompute")

    step(f"PASS — {extracted:g} extractions for {2 * N_TREES} "
         f"invocations, all payloads byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
