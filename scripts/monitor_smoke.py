#!/usr/bin/env python3
"""End-to-end smoke test for the telemetry stack (CI monitor-smoke leg).

Boots a real `repro serve` subprocess with an SLO rule file, a
telemetry stream, and a structured access log, drives traffic at it,
and checks the observability contract from the outside:

1. `/metricz` negotiates: `Accept: text/plain` serves parseable
   Prometheus text exposition; the default stays the JSON snapshot;
2. `/healthz` carries the SLO block and stays `ok` under healthy
   traffic;
3. responses echo the request's trace identity (`X-Trace-Id`,
   `traceparent`), honouring an inbound `traceparent` header;
4. the access log holds one well-formed JSON line per request with the
   matching trace ID;
5. after SIGTERM, `repro slo-check --stream` exits 0 against the
   exported healthy stream, and exits non-zero naming the breached
   rule against a synthetically degraded stream;
6. `repro monitor --stream --once` renders a dashboard frame from the
   exported stream.

Run locally from the repo root:
`PYTHONPATH=src python scripts/monitor_smoke.py`.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from smokeboot import (  # noqa: E402 — sibling helper module
    DaemonError,
    boot_daemon,
    cli_env,
    kill_quietly,
    shutdown_daemon,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TARGET_TREE = os.path.join("src", "repro", "obs")

SLO_RULES = {
    "slo": [
        {"name": "predict-p99", "kind": "latency",
         "histogram": "serve.predict.seconds", "stat": "p99",
         "max_seconds": 30.0},
        {"name": "shed-rate", "kind": "ratio_max",
         "numerator": "serve.shed", "denominator": "serve.requests",
         "max_ratio": 0.5},
        {"name": "error-budget", "kind": "counter_max",
         "counter": "serve.errors", "max_value": 100},
    ]
}


def fail(message: str) -> None:
    print(f"monitor-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def step(message: str) -> None:
    print(f"monitor-smoke: {message}", flush=True)


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT, env=cli_env(), capture_output=True, text=True)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(url: str, doc=None, method: str = "GET", headers=None):
    data = json.dumps(doc).encode() if doc is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    for name, value in (headers or {}).items():
        req.add_header(name, value)
    with urllib.request.urlopen(req, timeout=15) as resp:
        return resp.status, resp.read().decode(), dict(resp.headers)


def parse_prometheus(text: str) -> dict:
    """Parse text exposition into {metric{labels}: value}; fail on noise."""
    samples = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(" ", 1)
        if len(parts) != 2:
            fail(f"unparseable exposition line {lineno}: {line!r}")
        name, value = parts
        try:
            samples[name] = float(value)
        except ValueError:
            fail(f"non-numeric sample on line {lineno}: {line!r}")
    return samples


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="monitor-smoke-")
    model = os.path.join(workdir, "model.pkl")
    slo_path = os.path.join(workdir, "slo.json")
    stream_path = os.path.join(workdir, "telemetry.jsonl")
    access_path = os.path.join(workdir, "access.jsonl")
    with open(slo_path, "w", encoding="utf-8") as handle:
        json.dump(SLO_RULES, handle)

    step("training a small model")
    train = run_cli("train", "--apps", "8", "--folds", "3",
                    "--seed", "42", "--out", model)
    if train.returncode != 0:
        fail(f"train exited {train.returncode}:\n{train.stderr}")

    port = free_port()
    base = f"http://127.0.0.1:{port}"
    stderr_path = os.path.join(workdir, "daemon.stderr")
    step(f"booting repro serve with SLO + stream + access log on {port}")
    try:
        server, health = boot_daemon(
            [sys.executable, "-m", "repro",
             "--stream", stream_path,
             "serve", "--model", model, "--port", str(port),
             "--batch-window", "0.005",
             "--slo", slo_path, "--access-log", access_path],
            base, stderr_path, cwd=REPO_ROOT)
    except DaemonError as exc:
        fail(exc.message)
    try:
        step("driving traffic (predict + analyze)")
        _, offline, _ = request(f"{base}/analyze",
                                {"path": TARGET_TREE}, "POST")
        features = json.loads(offline)["features"]
        for _ in range(5):
            request(f"{base}/predict",
                    {"features": features, "model": "model"}, "POST")

        step("checking /healthz SLO block under healthy traffic")
        _, body, _ = request(f"{base}/healthz")
        health = json.loads(body)
        if health.get("status") != "ok":
            fail(f"health status {health.get('status')!r}, wanted 'ok'")
        slo = health.get("slo")
        if not slo or slo.get("ok") is not True or slo.get("breached"):
            fail(f"health slo block wrong: {slo!r}")
        if slo.get("rules") != len(SLO_RULES["slo"]):
            fail(f"health slo rules={slo.get('rules')}")

        step("checking /metricz content negotiation")
        _, body, headers = request(f"{base}/metricz")
        if "json" not in headers.get("Content-Type", ""):
            fail(f"default /metricz content type: {headers!r}")
        snapshot = json.loads(body)
        if snapshot["counters"].get("serve.requests", 0) < 6:
            fail("JSON snapshot missing request traffic")
        _, text, headers = request(f"{base}/metricz",
                                   headers={"Accept": "text/plain"})
        ctype = headers.get("Content-Type", "")
        if not ctype.startswith("text/plain"):
            fail(f"negotiated /metricz content type: {ctype!r}")
        samples = parse_prometheus(text)
        if samples.get("repro_serve_requests_total", 0) < 6:
            fail(f"exposition missing repro_serve_requests_total: "
                 f"{sorted(samples)[:10]}")
        if not any(name.startswith('repro_serve_predict_seconds{')
                   for name in samples):
            fail("exposition missing predict latency quantiles")

        step("checking trace propagation headers")
        inbound = "11112222333344445555666677778888"
        traceparent = f"00-{inbound}-00000000000000ff-01"
        _, _, headers = request(
            f"{base}/healthz", headers={"traceparent": traceparent})
        if headers.get("X-Trace-Id") != inbound:
            fail(f"X-Trace-Id {headers.get('X-Trace-Id')!r} does not "
                 f"honour inbound traceparent")
        if inbound not in headers.get("traceparent", ""):
            fail("response traceparent lost the inbound trace ID")
        _, _, headers = request(f"{base}/healthz")
        minted = headers.get("X-Trace-Id", "")
        if len(minted) != 32 or minted == inbound:
            fail(f"minted X-Trace-Id looks wrong: {minted!r}")

        step("sending SIGTERM")
        try:
            shutdown_daemon(server, stderr_path)
        except DaemonError as exc:
            fail(exc.message)
    finally:
        kill_quietly(server)

    step("checking the structured access log")
    with open(access_path, "r", encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if len(lines) < 8:
        fail(f"access log has only {len(lines)} lines")
    for record in lines:
        for key in ("ts", "method", "path", "status", "duration_ms",
                    "trace_id", "batch_size", "shed"):
            if key not in record:
                fail(f"access log line missing {key!r}: {record}")
    if not any(r["trace_id"] == "11112222333344445555666677778888"
               for r in lines):
        fail("access log never saw the propagated trace ID")

    step("slo-check against the exported healthy stream")
    check = run_cli("slo-check", "--slo", slo_path,
                    "--stream", stream_path)
    if check.returncode != 0:
        fail(f"healthy slo-check exited {check.returncode}:\n"
             f"{check.stdout}\n{check.stderr}")
    if "slo: ok" not in check.stdout:
        fail(f"healthy slo-check verdict missing:\n{check.stdout}")

    step("slo-check against a synthetically breached stream")
    breached_path = os.path.join(workdir, "breached.jsonl")
    with open(stream_path) as src, open(breached_path, "w") as dst:
        dst.write(src.read())
        # Far more shed requests than served ones: shed-rate must breach.
        for _ in range(50):
            dst.write(json.dumps(
                {"v": 1, "ts": time.time(), "type": "counter",
                 "name": "serve.shed", "delta": 1.0}) + "\n")
    check = run_cli("slo-check", "--slo", slo_path,
                    "--stream", breached_path)
    if check.returncode == 0:
        fail(f"breached slo-check exited 0:\n{check.stdout}")
    if "shed-rate" not in check.stdout:
        fail(f"breached slo-check does not name the rule:\n{check.stdout}")

    step("rendering repro monitor --once from the stream")
    frame = run_cli("monitor", "--stream", stream_path,
                    "--slo", slo_path, "--once")
    if frame.returncode != 0:
        fail(f"monitor --once exited {frame.returncode}:\n{frame.stderr}")
    for needle in ("repro monitor", "requests", "latency", "slo: ok"):
        if needle not in frame.stdout:
            fail(f"monitor frame missing {needle!r}:\n{frame.stdout}")

    step("PASS — telemetry stack healthy end to end")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
