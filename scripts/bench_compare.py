#!/usr/bin/env python3
"""Compare a fresh benchmark run against the committed baseline.

Reads two ``BENCH_*.json`` documents (the shape
``benchmarks/conftest.py`` writes: ``{"benchmarks": {nodeid:
{"seconds": ...}}}``), prints a per-benchmark table, and exits 1 when
any benchmark regressed beyond tolerance.

Regression policy: a benchmark regresses when its time exceeds
``baseline * (1 + --tolerance)`` AND the absolute growth exceeds
``--min-seconds`` — the noise floor keeps micro-benchmarks (a few ms,
dominated by scheduler jitter) from flapping the check. Benchmarks
present on only one side are reported but never fail the comparison
(new benchmarks have no baseline; removed ones have no run).

Per-analyzer timings (the ``analyzers`` section ``analyzer_recorder``
writes, e.g. the fused-vs-legacy breakdown from ``test_bench_fused``)
are compared the same way under their own, looser knobs
(``--analyzer-tolerance`` / ``--analyzer-min-seconds``): a single
analyzer's column is tens of milliseconds, so it needs a wider relative
band and a lower absolute floor than whole benchmarks to catch a real
per-analyzer regression without flapping on scheduler jitter.

CI wires this as a *non-blocking* annotation on the bench-smoke leg:
shared-runner timings are too noisy to gate merges on, but the table
in the job log makes a real regression visible the day it lands.

Usage::

    python scripts/bench_compare.py \
        --baseline BENCH_baseline.json --run BENCH_run.json \
        [--tolerance 0.35] [--min-seconds 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench-compare: cannot read {path!r}: {exc}")
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise SystemExit(
            f"bench-compare: {path!r} has no 'benchmarks' mapping")
    out = {}
    for nodeid, record in benchmarks.items():
        seconds = record.get("seconds") if isinstance(record, dict) else None
        if isinstance(seconds, (int, float)) and not isinstance(
                seconds, bool):
            out[nodeid] = float(seconds)
    return out


def load_analyzers(path: str) -> dict:
    """Flat ``{"<nodeid>::<analyzer>": seconds}`` map from ``analyzers``.

    The section is optional (the committed baseline may predate it);
    missing or malformed entries are skipped, mirroring
    :func:`load_benchmarks`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}
    analyzers = doc.get("analyzers")
    if not isinstance(analyzers, dict):
        return {}
    out = {}
    for nodeid, timings in analyzers.items():
        if not isinstance(timings, dict):
            continue
        for analyzer, seconds in timings.items():
            if isinstance(seconds, (int, float)) and not isinstance(
                    seconds, bool):
                out[f"{nodeid}::{analyzer}"] = float(seconds)
    return out


def short_name(nodeid: str) -> str:
    """``benchmarks/test_bench_x.py::test_y`` -> ``test_bench_x::test_y``."""
    name = nodeid.split("/")[-1]
    return name.replace(".py::", "::")


def compare(baseline: dict, run: dict, tolerance: float,
            min_seconds: float):
    """(table rows, regressed nodeids) for the two timing maps."""
    rows = []
    regressed = []
    for nodeid in sorted(set(baseline) | set(run)):
        base = baseline.get(nodeid)
        fresh = run.get(nodeid)
        if base is None:
            rows.append((short_name(nodeid), "-", f"{fresh:.3f}", "-",
                         "new"))
            continue
        if fresh is None:
            rows.append((short_name(nodeid), f"{base:.3f}", "-", "-",
                         "missing"))
            continue
        delta = fresh - base
        change = (fresh / base - 1.0) if base > 0 else float("inf")
        over_ratio = fresh > base * (1.0 + tolerance)
        over_floor = delta > min_seconds
        status = "REGRESSED" if (over_ratio and over_floor) else "ok"
        if status == "REGRESSED":
            regressed.append(nodeid)
        rows.append((short_name(nodeid), f"{base:.3f}", f"{fresh:.3f}",
                     f"{change:+.1%}" if base > 0 else "-",
                     status))
    return rows, regressed


def print_table(rows) -> None:
    headers = ("benchmark", "baseline(s)", "run(s)", "ratio", "status")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff a benchmark run against the committed baseline")
    parser.add_argument("--baseline", default="BENCH_baseline.json",
                        help="committed baseline timings")
    parser.add_argument("--run", default="BENCH_run.json",
                        help="fresh run to compare (benchmarks/ output)")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed relative growth before a benchmark "
                             "counts as regressed (default: 0.35 = +35%%)")
    parser.add_argument("--min-seconds", type=float, default=0.25,
                        help="absolute-growth noise floor; smaller "
                             "slowdowns never fail (default: 0.25s)")
    parser.add_argument("--analyzer-tolerance", type=float, default=0.75,
                        help="allowed relative growth for one analyzer's "
                             "recorded timing (default: 0.75 = +75%%)")
    parser.add_argument("--analyzer-min-seconds", type=float, default=0.1,
                        help="absolute-growth noise floor for per-analyzer "
                             "timings (default: 0.1s)")
    args = parser.parse_args(argv)

    baseline = load_benchmarks(args.baseline)
    run = load_benchmarks(args.run)
    rows, regressed = compare(baseline, run, args.tolerance,
                              args.min_seconds)
    print(f"bench-compare: {args.run} vs {args.baseline} "
          f"(tolerance +{args.tolerance:.0%}, "
          f"floor {args.min_seconds:g}s)")
    print_table(rows)

    base_analyzers = load_analyzers(args.baseline)
    run_analyzers = load_analyzers(args.run)
    if base_analyzers or run_analyzers:
        analyzer_rows, analyzer_regressed = compare(
            base_analyzers, run_analyzers, args.analyzer_tolerance,
            args.analyzer_min_seconds)
        print(f"\nper-analyzer timings "
              f"(tolerance +{args.analyzer_tolerance:.0%}, "
              f"floor {args.analyzer_min_seconds:g}s)")
        print_table(analyzer_rows)
        regressed = regressed + analyzer_regressed

    if regressed:
        print(f"\nbench-compare: {len(regressed)} benchmark(s) regressed:")
        for nodeid in regressed:
            print(f"  {nodeid}")
        return 1
    print("\nbench-compare: ok — no benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
