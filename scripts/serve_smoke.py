#!/usr/bin/env python3
"""End-to-end smoke test for the prediction daemon (the CI serve-smoke leg).

Boots a real `repro serve` subprocess against a freshly trained model,
then checks the serving contract from the outside:

1. `/healthz` answers within the boot budget and reports the same build
   identity as `repro --version`;
2. `POST /analyze` responses are byte-identical to offline
   `repro analyze --json` output (with and without a model);
3. a batched `POST /predict` returns, per instance, bytes identical to
   the `prediction` block the offline CLI computes;
4. `/metricz` shows the served traffic (request counters, predict
   latency histogram);
5. SIGTERM shuts the daemon down cleanly with exit code 0.

Any mismatch (or a non-zero server exit) fails the script. Run locally
from the repo root: `PYTHONPATH=src python scripts/serve_smoke.py`.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from smokeboot import (  # noqa: E402 — sibling helper module
    DaemonError,
    boot_daemon,
    cli_env,
    kill_quietly,
    shutdown_daemon,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TARGET_TREE = os.path.join("src", "repro", "serve")


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def step(message: str) -> None:
    print(f"serve-smoke: {message}", flush=True)


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT, env=cli_env(), capture_output=True, text=True)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(url: str, doc=None, method: str = "GET"):
    data = json.dumps(doc).encode() if doc is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(req, timeout=15) as resp:
        return resp.status, resp.read().decode()


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="serve-smoke-")
    model = os.path.join(workdir, "model.pkl")

    step("training a small model")
    train = run_cli("train", "--apps", "8", "--folds", "3",
                    "--seed", "42", "--out", model)
    if train.returncode != 0:
        fail(f"train exited {train.returncode}:\n{train.stderr}")

    step("capturing offline analyze --json output")
    offline = run_cli("analyze", TARGET_TREE, "--json")
    if offline.returncode != 0:
        fail(f"offline analyze exited {offline.returncode}")
    offline_with_model = run_cli("analyze", TARGET_TREE, "--json",
                                 "--model", model)
    if offline_with_model.returncode != 0:
        fail(f"offline analyze --model exited "
             f"{offline_with_model.returncode}")

    version_probe = run_cli("--version")
    cli_version = version_probe.stdout.strip().split()[-1]
    if not cli_version:
        fail("repro --version printed nothing")

    port = free_port()
    base = f"http://127.0.0.1:{port}"
    stderr_path = os.path.join(workdir, "daemon.stderr")
    step(f"booting repro serve on port {port}")
    try:
        server, health = boot_daemon(
            [sys.executable, "-m", "repro", "serve", "--model", model,
             "--port", str(port), "--batch-window", "0.005"],
            base, stderr_path, cwd=REPO_ROOT)
    except DaemonError as exc:
        fail(exc.message)
    try:
        step("checking /healthz build identity")
        if health["status"] != "ok":
            fail(f"unexpected health status: {health['status']}")
        if health["version"] != cli_version:
            fail(f"/healthz version {health['version']!r} != "
                 f"`repro --version` {cli_version!r}")

        step("diffing POST /analyze against offline analyze --json")
        _, served = request(f"{base}/analyze",
                            {"path": TARGET_TREE}, "POST")
        if served != offline.stdout:
            fail("served /analyze differs from offline analyze --json")
        _, served = request(f"{base}/analyze",
                            {"path": TARGET_TREE, "model": "model"},
                            "POST")
        if served != offline_with_model.stdout:
            fail("served /analyze (model) differs from offline "
                 "analyze --json --model")

        step("diffing batched POST /predict against offline prediction")
        doc = json.loads(offline_with_model.stdout)
        features, prediction = doc["features"], doc["prediction"]
        expected = json.dumps(prediction, indent=2, sort_keys=True) + "\n"
        _, served = request(f"{base}/predict",
                            {"features": features}, "POST")
        if served != expected:
            fail("served single /predict differs from offline prediction")
        _, served = request(
            f"{base}/predict",
            {"instances": [features, features, features]}, "POST")
        batch = json.loads(served)
        for index, row in enumerate(batch["predictions"]):
            if row != prediction:
                fail(f"batched prediction {index} differs from offline")

        step("checking /metricz saw the traffic")
        _, body = request(f"{base}/metricz")
        snapshot = json.loads(body)
        if snapshot["counters"].get("serve.requests", 0) < 4:
            fail(f"serve.requests={snapshot['counters']} too low")
        if snapshot["histograms"]["serve.predict.seconds"]["count"] < 2:
            fail("predict latency histogram missing observations")

        step("sending SIGTERM and checking clean exit")
        try:
            shutdown_daemon(server, stderr_path)
        except DaemonError as exc:
            fail(exc.message)
    finally:
        kill_quietly(server)
    step("PASS — served responses byte-identical, clean shutdown")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
