#!/usr/bin/env python3
"""Regenerate the golden feature-record expectations.

Reads every source file under ``tests/data/golden/tree/``, runs the
per-file analyzers and the merge phase over the tree, and rewrites
``tests/data/golden/expected_records.json`` and
``tests/data/golden/expected_row.json``.

Run this ONLY when an analyzer change is intentional — the whole point
of the golden corpus is that accidental drift fails
``tests/analysis/test_golden_records.py`` with a readable diff. An
intentional regeneration must ship with an ``ANALYZER_SET_VERSION``
bump (see ``repro.engine.digest``) so cached records miss cleanly.

Usage::

    PYTHONPATH=src python scripts/regen_golden.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs  # noqa: E402
from repro.core.features import file_record, merge_records  # noqa: E402
from repro.lang.sourcefile import Codebase  # noqa: E402

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "tests", "data", "golden"
)


def main() -> int:
    obs.disable()
    tree = os.path.join(GOLDEN_DIR, "tree")
    codebase = Codebase.from_directory(tree, name="golden")
    if not len(codebase):
        print(f"no source files under {tree}", file=sys.stderr)
        return 1

    records = {src.path: file_record(src) for src in codebase.files}
    row = merge_records(codebase, [records[p] for p in sorted(records)])

    records_path = os.path.join(GOLDEN_DIR, "expected_records.json")
    row_path = os.path.join(GOLDEN_DIR, "expected_row.json")
    with open(records_path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=1)
        fh.write("\n")
    with open(row_path, "w", encoding="utf-8") as fh:
        json.dump(row, fh, indent=1)
        fh.write("\n")
    print(f"wrote {records_path} ({len(records)} files)")
    print(f"wrote {row_path} ({len(row)} features)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
