#!/usr/bin/env python3
"""Synthetic load generator for the prediction daemon.

Drives one endpoint of a running daemon at fixed concurrency for a
fixed duration over persistent (keep-alive) connections, then reports
latency percentiles, throughput, and shed rate:

    PYTHONPATH=src python scripts/loadgen.py \\
        --url http://127.0.0.1:8080 --endpoint /analyze \\
        --payload '{"path": "src/repro/serve"}' \\
        --concurrency 16 --duration 10 --report loadgen.json \\
        --bench-json BENCH_run.json --label analyze.async

Each worker thread owns one connection and fires requests back to
back, so ``--concurrency N`` means exactly N requests in flight. A
``--warmup`` window at the start is driven but excluded from the
stats (cold caches and pool fork cost would otherwise pollute p99).

Status accounting: 2xx is ``ok``, 503 is ``shed`` (the daemon's
bounded queues refusing work — counted separately because shedding
under overload is correct behaviour with its own SLO), anything else
is ``errors``. Connection failures count as errors and the worker
reconnects.

With ``--bench-json`` the summary is also merged into a
``BENCH_run.json``-shaped document under a top-level ``"serving"``
mapping keyed by ``--label``, so serving performance rides the same
artifact and comparison tooling as the pytest benchmarks.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import threading
import time
import urllib.parse


class Worker(threading.Thread):
    """One persistent-connection client hammering the endpoint."""

    def __init__(self, args, stop_at, warmup_until):
        super().__init__(daemon=True)
        self.args = args
        self.stop_at = stop_at
        self.warmup_until = warmup_until
        self.latencies_ms = []
        self.ok = 0
        self.shed = 0
        self.errors = 0
        self.warmup_requests = 0

    def run(self):
        parsed = urllib.parse.urlsplit(self.args.url)
        host = parsed.hostname or "127.0.0.1"
        port = parsed.port or (443 if parsed.scheme == "https" else 80)
        body = self.args.payload_bytes
        headers = {"Content-Type": "application/json"}
        connection = None
        while time.monotonic() < self.stop_at:
            if connection is None:
                connection = http.client.HTTPConnection(
                    host,
                    port,
                    timeout=self.args.request_timeout,
                )
            started = time.monotonic()
            try:
                connection.request(
                    self.args.method,
                    self.args.endpoint,
                    body=body,
                    headers=headers,
                )
                response = connection.getresponse()
                response.read()
                status = response.status
            except (OSError, http.client.HTTPException):
                self.record(started, None)
                connection.close()
                connection = None
                continue
            self.record(started, status)
        if connection is not None:
            connection.close()

    def record(self, started, status):
        elapsed_ms = (time.monotonic() - started) * 1e3
        if started < self.warmup_until:
            self.warmup_requests += 1
            return
        if status is None:
            self.errors += 1
        elif status == 503:
            self.shed += 1
        elif 200 <= status < 300:
            self.ok += 1
            self.latencies_ms.append(elapsed_ms)
        else:
            self.errors += 1


def percentile(sorted_values, q):
    if not sorted_values:
        return None
    index = round(q * (len(sorted_values) - 1))
    return sorted_values[index]


def run_load(args):
    now = time.monotonic()
    warmup_until = now + args.warmup
    stop_at = warmup_until + args.duration
    workers = [Worker(args, stop_at, warmup_until) for _ in range(args.concurrency)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=args.warmup + args.duration + 120)
        if worker.is_alive():
            raise SystemExit("loadgen: a worker thread never finished")
    latencies = sorted(value for worker in workers for value in worker.latencies_ms)
    ok = sum(worker.ok for worker in workers)
    shed = sum(worker.shed for worker in workers)
    errors = sum(worker.errors for worker in workers)
    warmup = sum(worker.warmup_requests for worker in workers)
    total = ok + shed + errors
    summary = {
        "url": args.url,
        "endpoint": args.endpoint,
        "concurrency": args.concurrency,
        "duration_s": args.duration,
        "warmup_s": args.warmup,
        "warmup_requests": warmup,
        "requests": total,
        "ok": ok,
        "shed": shed,
        "errors": errors,
        "shed_rate": (shed / total) if total else 0.0,
        "error_rate": (errors / total) if total else 0.0,
        "throughput_rps": ok / args.duration if args.duration else 0.0,
        "latency_ms": {
            "p50": percentile(latencies, 0.50),
            "p90": percentile(latencies, 0.90),
            "p99": percentile(latencies, 0.99),
            "mean": (sum(latencies) / len(latencies)) if latencies else None,
            "max": latencies[-1] if latencies else None,
        },
    }
    return summary


def merge_bench(path, label, summary):
    """Fold the summary into a BENCH_run.json-shaped document.

    Creates the file (with an empty ``benchmarks`` mapping, the shape
    ``bench_compare.py`` requires) when it does not exist yet;
    otherwise only the ``serving`` section is touched.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError):
        doc = {}
    doc.setdefault("benchmarks", {})
    doc.setdefault("serving", {})[label] = {
        "concurrency": summary["concurrency"],
        "throughput_rps": summary["throughput_rps"],
        "p50_ms": summary["latency_ms"]["p50"],
        "p99_ms": summary["latency_ms"]["p99"],
        "shed_rate": summary["shed_rate"],
        "error_rate": summary["error_rate"],
        "requests": summary["requests"],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def build_parser():
    parser = argparse.ArgumentParser(
        description="drive a running repro daemon at fixed concurrency"
    )
    parser.add_argument(
        "--url",
        required=True,
        help="base URL of the daemon, e.g. http://127.0.0.1:8080",
    )
    parser.add_argument(
        "--endpoint",
        default="/analyze",
        help="endpoint to hammer (default: /analyze)",
    )
    parser.add_argument(
        "--method",
        default="POST",
        choices=("GET", "POST"),
        help="HTTP method (default: POST)",
    )
    payload = parser.add_mutually_exclusive_group()
    payload.add_argument(
        "--payload",
        default=None,
        help="inline JSON request body",
    )
    payload.add_argument(
        "--payload-file",
        default=None,
        help="file holding the JSON request body",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="worker threads / in-flight requests (default: 8)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="measured seconds of load (default: 10)",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=2.0,
        help="seconds of unmeasured warmup traffic (default: 2)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        help="per-request socket timeout (default: 60)",
    )
    parser.add_argument(
        "--report",
        default=None,
        help="write the full summary JSON here",
    )
    parser.add_argument(
        "--bench-json",
        default=None,
        help="merge the summary into this BENCH_run.json document",
    )
    parser.add_argument(
        "--label",
        default="serve",
        help="key for the bench-json serving section (default: serve)",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.payload_file:
        with open(args.payload_file, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = args.payload or ""
    if text:
        try:
            json.loads(text)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"loadgen: payload is not valid JSON: {exc}")
    args.payload_bytes = text.encode("utf-8") if text else None
    if args.concurrency < 1:
        raise SystemExit("loadgen: --concurrency must be >= 1")
    summary = run_load(args)
    json.dump(summary, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.bench_json:
        merge_bench(args.bench_json, args.label, summary)
    if summary["requests"] == 0:
        raise SystemExit("loadgen: no requests completed — daemon down?")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
