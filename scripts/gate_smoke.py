#!/usr/bin/env python3
"""End-to-end smoke test for the risk gate (CI gate-smoke leg).

Drives the real CLI against a synthetic before/after pair on disk,
through a shared SQLite cache — the deployment shape of a CI security
gate (one cache, many gate runs):

1. cold `repro gate BASE HEAD --json --cache-dir sqlite:DB` — the head
   introduces a dangerous-call regression, so the gate must breach
   (exit 3) and the payload must attribute the breach to the edited
   file;
2. identical re-run — byte-identical JSON (the gate document is a
   cacheable artifact, so its bytes must be deterministic);
3. edit one more head file, re-gate warm with `--profile` — still a
   breach, >= 90% of per-file records must come from the cache, and
   the warm run must finish in at most half the cold run's wall time.

Any mismatch fails the script. Run locally from the repo root:
`PYTHONPATH=src python scripts/gate_smoke.py`.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
N_FILES = 20
#: Functions per synthetic file. The bodies are long and
#: assignment-dense on purpose: per-file analyses (CFG, dataflow,
#: Halstead) must dominate the cold run so the warm run's per-file
#: cache hits show up in wall time, while the function count stays
#: modest so tree-level passes (the call graph), which run cold and
#: warm alike, stay cheap.
N_FUNCS = 12
N_STMTS = 40

GATE_ARGS = ("--features-only", "--threshold", "0.0", "--json")


def fail(message: str) -> None:
    print(f"gate-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def step(message: str) -> None:
    print(f"gate-smoke: {message}", flush=True)


def run_cli(*argv: str) -> "tuple[subprocess.CompletedProcess, float]":
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CACHE_DIR", None)
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    return proc, time.perf_counter() - started


def write_tree(root: str) -> None:
    src = os.path.join(root, "src")
    os.makedirs(src, exist_ok=True)
    for i in range(N_FILES):
        parts = []
        for f in range(N_FUNCS):
            body = [f"int fn{i}_{f}(int a, int b) {{",
                    f"    int v0 = a + {f};"]
            for s in range(1, N_STMTS):
                body.append(
                    f"    int v{s} = v{s - 1} ^ (b + {s});\n"
                    f"    if ((v{s} + {i}) % {2 + s % 5} == 0) "
                    f"v{s} += v{max(0, s - 3)};\n"
                    f"    else v{s} -= v{s // 2};")
            body.append(f"    return v{N_STMTS - 1};")
            body.append("}")
            parts.append("\n".join(body) + "\n")
        with open(os.path.join(src, f"unit{i:02d}.c"), "w") as handle:
            handle.write("\n".join(parts))


def introduce_regression(root: str) -> None:
    victim = os.path.join(root, "src", "unit03.c")
    with open(victim, "a") as handle:
        handle.write(
            "#include <string.h>\n"
            "int handle_request(char *req) {\n"
            "    char buf[32];\n"
            "    strcpy(buf, req);\n"
            "    system(req);\n"
            "    return 0;\n"
            "}\n")


def edit_one_more_file(root: str) -> None:
    victim = os.path.join(root, "src", "unit09.c")
    with open(victim, "a") as handle:
        handle.write("int edited_in(void) {\n    return 99;\n}\n")


def counter_value(profile_text: str, name: str) -> float:
    match = re.search(
        rf"counter\s+{re.escape(name)}\s+([0-9.eE+-]+)", profile_text)
    return float(match.group(1)) if match else 0.0


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="gate-smoke-")
    base = os.path.join(workdir, "base")
    head = os.path.join(workdir, "head")
    cache = "sqlite:" + os.path.join(workdir, "gate-cache.db")
    write_tree(base)
    shutil.copytree(base, head)
    introduce_regression(head)

    step(f"cold gate over two {N_FILES}-file trees (seeding {cache})")
    cold, cold_s = run_cli("gate", base, head, *GATE_ARGS,
                           "--cache-dir", cache)
    if cold.returncode != 3:
        fail(f"cold gate exited {cold.returncode}, expected 3 (breach):"
             f"\n{cold.stderr}")
    import json
    doc = json.loads(cold.stdout)
    if doc["breach"] is not True:
        fail("cold gate payload does not report a breach")
    if not any(f["path"] == "src/unit03.c" for f in doc["files"]):
        fail("breach payload does not attribute the edited file")
    step(f"cold gate breached as expected in {cold_s:.2f}s")

    step("identical re-run must produce byte-identical JSON")
    rerun, _ = run_cli("gate", base, head, *GATE_ARGS,
                       "--cache-dir", cache)
    if rerun.returncode != 3:
        fail(f"re-run exited {rerun.returncode}, expected 3")
    if rerun.stdout != cold.stdout:
        fail("gate JSON differs between identical runs")

    step("editing one more head file and re-gating warm (--profile)")
    edit_one_more_file(head)
    warm, warm_s = run_cli("gate", base, head, *GATE_ARGS,
                           "--cache-dir", cache, "--profile")
    if warm.returncode != 3:
        fail(f"warm gate exited {warm.returncode}, expected 3:"
             f"\n{warm.stderr}")
    payload, _, profile = warm.stdout.partition("\n\nrepro telemetry")
    if not profile:
        fail("warm run printed no telemetry report")
    if payload + "\n" == cold.stdout:
        fail("warm output identical to pre-edit output — the edit "
             "was not picked up")

    file_hits = counter_value(profile, "engine.cache.file_hits")
    file_misses = counter_value(profile, "engine.cache.file_misses")
    probed = file_hits + file_misses
    reuse = 100.0 * file_hits / probed if probed else 0.0
    # Base is untouched (N hits) and head moved by one file
    # (N-1 hits, 1 miss): 2N-1 of 2N records must come from the cache.
    if probed != 2 * N_FILES:
        fail(f"probed {probed:g} file records, expected {2 * N_FILES}")
    if file_misses != 1:
        fail(f"engine.cache.file_misses={file_misses:g}, expected 1")
    if reuse < 90.0:
        fail(f"file-record reuse {reuse:.1f}% < 90%")
    if "gate:" not in profile:
        fail("profile report is missing the gate: section")
    step(f"file records reused: {file_hits:g}/{probed:g} "
         f"({reuse:.1f}%), recomputed {file_misses:g}")

    if warm_s > cold_s / 2.0:
        fail(f"warm gate took {warm_s:.2f}s, over half the cold run's "
             f"{cold_s:.2f}s — the incremental path is not paying off")
    step(f"warm re-gate {cold_s / warm_s:.1f}x faster than cold "
         f"({warm_s:.2f}s vs {cold_s:.2f}s)")

    step("PASS — breach exit code, byte-stable JSON, "
         f"{reuse:.1f}% record reuse, {cold_s / warm_s:.1f}x warm speedup")
    shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
