#!/usr/bin/env python3
"""End-to-end smoke test for incremental extraction (CI delta-smoke leg).

Drives the real CLI against a synthetic source tree on disk:

1. cold `repro analyze --json --cache-dir D` over the tree (seeds the
   row, per-file, and manifest caches);
2. mutate exactly one file, re-analyze warm through the same cache with
   `--profile`, and require `engine.cache.file_hits > 0` in the profile
   report (the incremental path actually ran);
3. diff the warm output byte-for-byte against a fresh
   `repro analyze --json --no-cache` run over the mutated tree — the
   delta merge must be indistinguishable from a full recompute.

Any mismatch fails the script. Run locally from the repo root:
`PYTHONPATH=src python scripts/delta_smoke.py`.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
N_FILES = 20


def fail(message: str) -> None:
    print(f"delta-smoke: FAIL — {message}", file=sys.stderr)
    raise SystemExit(1)


def step(message: str) -> None:
    print(f"delta-smoke: {message}", flush=True)


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    # The smoke must control caching exactly; never inherit a CI cache.
    env.pop("REPRO_CACHE_DIR", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)


def write_tree(root: str) -> None:
    src = os.path.join(root, "src")
    os.makedirs(src, exist_ok=True)
    for i in range(N_FILES):
        body = (f"int fn{i}(int a, int b) {{\n"
                f"    int total = a;\n"
                f"    for (int j = 0; j < b; j++) {{\n"
                f"        if ((j + {i}) % 3 == 0) total += j;\n"
                f"        else total -= {i + 1};\n"
                f"    }}\n"
                f"    return total;\n"
                f"}}\n")
        with open(os.path.join(src, f"unit{i:02d}.c"), "w") as handle:
            handle.write(body)


def mutate_one_file(root: str) -> str:
    victim = os.path.join(root, "src", "unit07.c")
    with open(victim, "a") as handle:
        handle.write("int edited_in(void) {\n    return 99;\n}\n")
    return victim


def counter_value(profile_text: str, name: str) -> float:
    match = re.search(
        rf"counter\s+{re.escape(name)}\s+([0-9.eE+-]+)", profile_text)
    return float(match.group(1)) if match else 0.0


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="delta-smoke-")
    tree = os.path.join(workdir, "tree")
    cache = os.path.join(workdir, "cache")
    write_tree(tree)

    step(f"cold analyze over {N_FILES}-file tree (seeding {cache})")
    cold = run_cli("analyze", tree, "--json", "--cache-dir", cache)
    if cold.returncode != 0:
        fail(f"cold analyze exited {cold.returncode}:\n{cold.stderr}")

    step("mutating one file and re-analyzing warm (--profile)")
    mutate_one_file(tree)
    warm = run_cli("analyze", tree, "--json", "--cache-dir", cache,
                   "--profile")
    if warm.returncode != 0:
        fail(f"warm analyze exited {warm.returncode}:\n{warm.stderr}")
    # --profile prints the telemetry report after the JSON document;
    # split them at the blank line the CLI emits between the two.
    payload, _, profile = warm.stdout.partition("\n\nrepro telemetry")
    payload += "\n"
    if not profile:
        fail("warm run printed no telemetry report")

    file_hits = counter_value(profile, "engine.cache.file_hits")
    file_misses = counter_value(profile, "engine.cache.file_misses")
    if file_hits != N_FILES - 1:
        fail(f"engine.cache.file_hits={file_hits:g}, "
             f"expected {N_FILES - 1} (incremental path not taken?)")
    if file_misses != 1:
        fail(f"engine.cache.file_misses={file_misses:g}, expected 1")
    if "delta:" not in profile:
        fail("profile report is missing the delta: section")
    step(f"file records reused: {file_hits:g}/{N_FILES} "
         f"(recomputed {file_misses:g})")

    step("diffing warm output against a fresh --no-cache recompute")
    fresh = run_cli("analyze", tree, "--json", "--no-cache")
    if fresh.returncode != 0:
        fail(f"fresh analyze exited {fresh.returncode}:\n{fresh.stderr}")
    if payload != fresh.stdout:
        fail("warm delta output differs from full recompute")
    if payload == cold.stdout:
        fail("warm output identical to pre-edit output — the edit "
             "was not picked up")

    step("PASS — delta re-analysis byte-identical, "
         f"{file_hits:g} file records reused")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
