"""F1/T1 — Figure 1: how top-venue papers evaluate security.

Paper: 384 papers use lines of code, 116 use CVE-report counts, 31 are
formally verified/proved, across CCS, PLDI, SOSP, ASPLOS, EuroSys. The
bench regenerates the survey corpus and re-derives the counts with the
keyword classifier, printing the per-venue breakdown Figure 1 stacks.
"""

import pytest

from repro.synth import papersurvey
from repro.synth import profiles as P

PAPER_TOTALS = {"loc": 384, "cve": 116, "formal": 31}


@pytest.fixture(scope="module")
def survey_result():
    corpus = papersurvey.generate_corpus(seed=42)
    return papersurvey.survey(corpus), corpus


def test_bench_fig1_survey(benchmark, survey_result, table_printer):
    result, corpus = survey_result
    timed = benchmark(papersurvey.survey, corpus)

    rows = []
    for style in ("loc", "cve", "formal"):
        rows.append(
            (style, PAPER_TOTALS[style], timed.totals[style])
            + tuple(timed.by_venue[v][style] for v in P.SURVEY_VENUES)
        )
    table_printer(
        "Figure 1 — papers per evaluation style (paper vs measured)",
        ("style", "paper", "measured") + P.SURVEY_VENUES,
        rows,
    )
    print(f"classifier accuracy vs ground truth: {timed.accuracy:.3f}")

    # Shape assertions: totals match the published Figure 1 exactly and
    # the ordering LoC >> CVE >> formal holds.
    for style, expected in PAPER_TOTALS.items():
        assert timed.totals[style] == expected
    assert timed.totals["loc"] > timed.totals["cve"] > timed.totals["formal"]
