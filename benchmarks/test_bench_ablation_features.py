"""A1 — feature-set ablation: "maybe more metrics?" (§4).

The paper's thesis is that "a weighted aggregation of multiple metrics
can provide a more precise estimation of potential vulnerabilities" than
any single metric. The bench nests feature sets from LoC-only up to the
full testbed vector and shows monotone-ish improvement, with the full
vector decisively beating the single-metric status quo.
"""

import pytest

from repro.core.hypotheses import (
    MANY_HIGH_SEVERITY,
    NETWORK_ACCESSIBLE,
    STACK_OVERFLOW,
    TOTAL_COUNT,
)
from repro.core.pipeline import train
from repro.ml.linear import LinearRegressor

FEATURE_SETS = (
    ("LoC only", ("size",)),
    ("LoC + complexity", ("size", "complexity", "halstead")),
    ("+ shape/flow/calls", ("size", "complexity", "halstead", "shape",
                            "flow", "calls")),
    ("+ surface/bugs/smells", ("size", "complexity", "halstead", "shape",
                               "flow", "calls", "surface", "bugs", "smell")),
    ("full vector", ("size", "lang", "complexity", "halstead", "shape",
                     "flow", "calls", "surface", "bugs", "smell", "churn")),
)

HYPOTHESES = (MANY_HIGH_SEVERITY, NETWORK_ACCESSIBLE, STACK_OVERFLOW,
              TOTAL_COUNT)


def test_bench_ablation_feature_sets(benchmark, corpus, feature_table,
                                     table_printer):
    def run():
        results = {}
        for set_name, groups in FEATURE_SETS:
            table = feature_table.restricted(groups)
            outcome = train(
                corpus,
                hypotheses=HYPOTHESES,
                table=table,
                k=10,
                seed=42,
                regressor_factory=lambda: LinearRegressor(l2=10.0),
            )
            results[set_name] = {
                hyp.hypothesis_id: (
                    outcome.cv_results[hyp.hypothesis_id]["auc"]
                    if hyp.kind == "classification"
                    else outcome.cv_results[hyp.hypothesis_id]["r2"]
                )
                for hyp in HYPOTHESES
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ("feature set",) + tuple(h.hypothesis_id for h in HYPOTHESES)
    rows = [
        (set_name,) + tuple(
            f"{results[set_name][h.hypothesis_id]:.3f}" for h in HYPOTHESES
        )
        for set_name, _ in FEATURE_SETS
    ]
    table_printer(
        "A1 — AUC (classification) / R^2 (total_count) per feature set",
        headers,
        rows,
    )

    loc_only = results["LoC only"]
    full = results["full vector"]
    # The paper's claim: aggregation beats the single metric, everywhere.
    for hyp in HYPOTHESES:
        assert full[hyp.hypothesis_id] > loc_only[hyp.hypothesis_id], (
            f"full vector no better than LoC for {hyp.hypothesis_id}"
        )
    # And the LoC-only count regression sits near Figure 2's ~25% R^2.
    assert loc_only["total_count"] == pytest.approx(0.25, abs=0.12)
