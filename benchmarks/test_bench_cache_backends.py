"""Cache-backend micro-benchmark — filesystem vs SQLite warm serving.

Times cold (populating) and warm (serving) extraction runs through a
``FeatureCache`` on each storage backend and prints the comparison
table. The timing assertion is one-sided and backend-agnostic: a warm
run on *either* backend does zero extraction, so it must clearly beat
the cold run that populated it. The byte-identity claims (warm rows on
both backends equal the cold rows) are asserted unconditionally.

Uses ``time.perf_counter`` rather than pytest-benchmark so the CI leg
can run it with the baseline dependency set.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core.pipeline import build_feature_table
from repro.engine import ExtractionEngine, FeatureCache

N_APPS = 16


def _timed(corpus, engine):
    start = time.perf_counter()
    table = build_feature_table(corpus, engine=engine)
    return time.perf_counter() - start, table


def test_bench_cache_backends(tmp_path, table_printer):
    from repro.synth import build_corpus

    obs.disable()
    corpus = build_corpus(seed=5, limit=N_APPS)
    backends = {
        "fs": str(tmp_path / "fs-cache"),
        "sqlite": f"sqlite:{tmp_path / 'cache.db'}",
    }

    timings = {}
    tables = {}
    for kind, spec in backends.items():
        cache = FeatureCache(spec)
        cold_s, cold = _timed(
            corpus, ExtractionEngine(workers=1, cache=cache))
        warm_s, warm = _timed(
            corpus, ExtractionEngine(workers=1, cache=cache))
        timings[kind] = (cold_s, warm_s)
        tables[kind] = (cold, warm)

    rows = []
    for kind, (cold_s, warm_s) in timings.items():
        rows.append((f"{kind} cold", f"{cold_s:8.3f}", "populates cache"))
        rows.append((f"{kind} warm", f"{warm_s:8.3f}",
                     f"{cold_s / warm_s:.1f}x faster, zero extractions"))
    table_printer(
        f"cache backends — {N_APPS}-app extraction, cold vs warm",
        ("configuration", "seconds", "note"),
        rows,
    )

    # Byte-identity: warm rows on both backends match the cold rows,
    # and the two backends agree with each other.
    reference = tables["fs"][0]
    for kind, (cold, warm) in tables.items():
        assert cold.rows == reference.rows, kind
        assert warm.rows == reference.rows, kind
        assert warm.app_names == reference.app_names, kind

    # Serving beats computing on every backend.
    for kind, (cold_s, warm_s) in timings.items():
        assert warm_s < cold_s / 2, (
            f"{kind}: warm {warm_s:.3f}s vs cold {cold_s:.3f}s")
