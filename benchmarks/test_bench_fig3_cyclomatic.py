"""F3 — Figure 3: cyclomatic complexity vs number of vulnerabilities.

Paper: whole-program McCabe complexity is "also weakly correlated to the
number of vulnerabilities" — same story as Figure 2, different x-axis.
The bench measures real McCabe totals on each app's sampled code, scales
by the app's nominal size (density x kLoC, i.e. what running the tool on
the full tree would approximate), fits the log-log trend, and checks the
correlation stays weak-but-positive.
"""

import pytest

from repro.analysis import cyclomatic, loc
from repro.stats.correlation import pearson, spearman
from repro.stats.regression import fit_loglog


@pytest.fixture(scope="module")
def complexity_series(corpus):
    xs = []
    ys = []
    for app in corpus.apps:
        sample_cc = cyclomatic.codebase_complexity(app.codebase)
        sample_loc = max(loc.count_codebase(app.codebase).code, 1)
        density = sample_cc / sample_loc
        # Estimated whole-program complexity (Figure 3's x-axis).
        xs.append(density * app.profile.kloc * 1000.0)
        ys.append(app.profile.n_vulns)
    return xs, ys


def test_bench_fig3_cyclomatic_vs_vulns(
    benchmark, corpus, complexity_series, table_printer
):
    xs, ys = complexity_series
    fit = benchmark(fit_loglog, xs, ys)

    table_printer(
        "Figure 3 — cyclomatic complexity vs #vulns",
        ("quantity", "paper", "measured"),
        [
            ("correlation", "weak (like Fig 2)", f"R^2 = {fit.r_squared:.2%}"),
            ("slope sign", "positive", f"{fit.slope:+.3f}"),
            ("complexity range", "100 .. 1,000,000",
             f"{min(xs):,.0f} .. {max(xs):,.0f}"),
            ("pearson(log-log)", "-", f"{pearson(xs, ys):.3f}"),
            ("spearman", "-", f"{spearman(xs, ys):.3f}"),
        ],
    )

    # Shape: positive but weak — comparable to the LoC fit, nowhere near
    # strong enough to rank same-order-of-magnitude programs.
    assert fit.slope > 0
    assert 0.05 < fit.r_squared < 0.45
    assert min(xs) >= 100 and max(xs) <= 2_000_000


def test_bench_fig3_mccabe_tool(benchmark, corpus):
    """Time the McCabe analyzer across the corpus (the testbed's cost)."""

    def run_all():
        return sum(
            cyclomatic.codebase_complexity(app.codebase) for app in corpus.apps
        )

    total = benchmark(run_all)
    assert total > 0
