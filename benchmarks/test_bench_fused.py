"""Fused-vs-legacy extraction benchmark over a 120-file tree.

The single-parse artifact refactor replaces an architecture in which
every analyzer re-derived its own views — re-lexing, re-extracting the
function table, and re-building CFGs per file, independently. This
benchmark measures the fused path against that architecture two ways:

- **independent legacy** (the gate): each legacy collector runs on its
  own fresh ``SourceFile`` copies, the way the pre-artifact analyzers
  behave when driven individually (standalone bugfind tools, analysis
  CLIs, serve endpoints). Every analyzer pays its own lex + parse.
- **shared legacy** (informational): all legacy collectors run inside
  one ``file_record_legacy`` pass per file, where the memoized token
  stream is shared and only the function tables / CFGs / scans are
  re-derived. This is the tighter in-engine comparison; its smaller
  ratio is printed in the same table, not hidden.

Both paths' records are asserted equal first — speed on different
answers would be meaningless. Timings land in ``BENCH_run.json`` via
``analyzer_recorder`` so ``scripts/bench_compare.py`` can track them.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core.features import (
    LEGACY_PER_FILE_COLLECTORS,
    _PER_FILE_COLLECTORS,
    file_record,
    file_record_legacy,
)
from repro.lang.sourcefile import Codebase, SourceFile
from repro.synth import build_corpus

N_FILES = 120
#: Required cold-extraction speedup of the fused single-parse path over
#: the independent legacy analyzers. Measured headroom is ~2x beyond
#: this, so a noisy shared runner cannot flap the gate; the engine-level
#: claim (>=3x on bench_engine vs the committed baseline) is checked by
#: scripts/bench_compare.py.
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def bench_tree():
    """One flat 120-file codebase drawn from the calibrated corpus."""
    files = []
    for app in build_corpus(seed=11, limit=24).apps:
        for source in app.codebase.files:
            # Re-home under the app so paths stay unique in one tree.
            files.append(SourceFile(
                f"{app.profile.name}/{source.path}", source.text,
                source.spec,
            ))
            if len(files) == N_FILES:
                return Codebase("bench-fused", files)
    raise RuntimeError(f"corpus yielded only {len(files)} files")


def _fresh(codebase):
    return [SourceFile(f.path, f.text, f.spec) for f in codebase.files]


def _timed_records(sources, record_fn):
    start = time.perf_counter()
    records = [record_fn(source) for source in sources]
    return time.perf_counter() - start, records


def _per_analyzer_fused(codebase):
    """Fused analyzer-major timings over one shared fresh tree.

    The first artifact consumer pays the single parse and the rest ride
    the cache, so summing the column reproduces the fused cold cost.
    """
    sources = _fresh(codebase)
    timings = {}
    for _, key, collect in _PER_FILE_COLLECTORS:
        start = time.perf_counter()
        for source in sources:
            collect(source)
        timings[key] = time.perf_counter() - start
    return timings


def _per_analyzer_legacy(codebase):
    """Independent legacy timings: fresh sources per analyzer.

    Fresh ``SourceFile`` copies per collector mean each analyzer re-lexes
    and re-derives everything itself — the pre-artifact architecture this
    PR's tentpole replaces, and the column sum the headline gate uses.
    """
    timings = {}
    for _, key, collect in LEGACY_PER_FILE_COLLECTORS:
        sources = _fresh(codebase)
        start = time.perf_counter()
        for source in sources:
            collect(source)
        timings[key] = time.perf_counter() - start
    return timings


def test_bench_fused_vs_legacy(bench_tree, table_printer,
                               analyzer_recorder):
    obs.disable()

    # Same answers, or the comparison is void. Also times the shared
    # (file-major) variants of both paths while doing so.
    shared_legacy_s, legacy_records = _timed_records(
        _fresh(bench_tree), file_record_legacy
    )
    fused_s, fused_records = _timed_records(_fresh(bench_tree), file_record)
    assert [repr(r) for r in fused_records] == [
        repr(r) for r in legacy_records
    ]

    fused_by = _per_analyzer_fused(bench_tree)
    legacy_by = _per_analyzer_legacy(bench_tree)
    analyzer_recorder(fused_by, label="fused")
    analyzer_recorder(legacy_by, label="legacy")
    legacy_s = sum(legacy_by.values())
    fused_cold_s = sum(fused_by.values())

    rows = []
    for key in fused_by:
        ratio = (legacy_by[key] / fused_by[key]
                 if fused_by[key] > 0 else float("inf"))
        rows.append((key, f"{legacy_by[key]:7.3f}", f"{fused_by[key]:7.3f}",
                     f"{ratio:5.2f}x"))
    rows.append(("TOTAL (independent)", f"{legacy_s:7.3f}",
                 f"{fused_cold_s:7.3f}",
                 f"{legacy_s / fused_cold_s:5.2f}x"))
    rows.append(("TOTAL (file-major, shared tokens)",
                 f"{shared_legacy_s:7.3f}", f"{fused_s:7.3f}",
                 f"{shared_legacy_s / fused_s:5.2f}x"))
    table_printer(
        f"fused vs legacy extraction — {len(bench_tree)} files",
        ("analyzer", "legacy(s)", "fused(s)", "speedup"),
        rows,
    )

    assert fused_s * MIN_SPEEDUP <= legacy_s, (
        f"fused cold extraction {fused_s:.3f}s is not {MIN_SPEEDUP:.0f}x "
        f"faster than the independent legacy analyzers {legacy_s:.3f}s "
        f"({legacy_s / fused_s:.2f}x)"
    )
