"""Delta-extraction benchmark — cold vs warm-after-one-edit.

Times single-app extraction over a many-file synthetic codebase three
ways: cold (empty cache), warm after touching exactly one file (the
incremental path: one file recomputed, the rest replayed from per-file
records), and a fully uncached recompute of the same edited tree for
reference. The incremental claim is that warm-after-edit scales with
the size of the *edit*, not the size of the tree, so it must beat the
uncached recompute by a wide margin — while producing the identical
row.

Uses ``time.perf_counter`` rather than pytest-benchmark so the CI leg
can run it with the baseline dependency set.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.engine import ExtractionEngine, FeatureCache
from repro.lang import Codebase, SourceFile

N_FILES = 120
FUNCS_PER_FILE = 12


def _file_body(index: int, edited: bool = False) -> str:
    parts = []
    for f in range(FUNCS_PER_FILE):
        parts.append(
            f"int fn_{index}_{f}(int a, int b) {{\n"
            f"    int total = a;\n"
            f"    for (int i = 0; i < b; i++) {{\n"
            f"        if ((i + {f}) % 3 == 0) total += i * {index + 1};\n"
            f"        else total -= i;\n"
            f"    }}\n"
            f"    return total;\n"
            f"}}\n")
    if edited:
        parts.append("int edited_in(void) {\n    return 1;\n}\n")
    return "\n".join(parts)


def make_tree(edited: bool = False) -> Codebase:
    return Codebase("delta-bench", [
        SourceFile(f"src/unit{i:03d}.c", _file_body(i, edited and i == 0))
        for i in range(N_FILES)
    ])


def _timed(engine, codebase):
    start = time.perf_counter()
    row = engine.extract_one(codebase)
    return time.perf_counter() - start, row


def test_bench_delta(tmp_path, table_printer):
    obs.disable()
    cache = FeatureCache(str(tmp_path / "cache"))

    cold_s, _ = _timed(ExtractionEngine(workers=1, cache=cache),
                       make_tree())
    warm_s, warm_row = _timed(ExtractionEngine(workers=1, cache=cache),
                              make_tree(edited=True))
    uncached_s, reference = _timed(ExtractionEngine(workers=1),
                                   make_tree(edited=True))

    rows = [
        ("cold (empty cache)", f"{cold_s:8.3f}", "1.00x",
         f"{N_FILES} files analyzed"),
        ("uncached recompute", f"{uncached_s:8.3f}",
         f"{cold_s / uncached_s:.2f}x", "edited tree, no cache"),
        ("warm, 1 file edited", f"{warm_s:8.3f}",
         f"{cold_s / warm_s:.2f}x", "1 file recomputed + merge"),
    ]
    table_printer(
        f"delta — {N_FILES}-file app, warm re-analysis after one edit",
        ("configuration", "seconds", "speedup", "note"),
        rows,
    )

    # The warm row must be byte-identical to the uncached recompute.
    assert list(warm_row) == list(reference)
    assert all(repr(warm_row[k]) == repr(reference[k]) for k in reference)

    # Recomputing 1/120th of the tree plus the merge phase must clearly
    # beat recomputing everything.
    assert warm_s < uncached_s / 2, (
        f"warm delta {warm_s:.3f}s vs uncached {uncached_s:.3f}s"
    )
