"""A2 — selecting the safer of two programs: model vs status-quo metrics.

The paper's §1 use case: "in selecting between two library
implementations for use in a web service, our proposed metric would
identify which is less likely to have vulnerabilities." The bench plays
that game over held-out application pairs, comparing three selectors:

- **LoC-naive** (§3.1's status quo): fewer lines wins;
- **Wang CVSS-aggregate** [67]: lower aggregate over *known* reports wins
  — strong when history exists, undefined for new code (§3.2's critique);
- **the trained model**: lower predicted vulnerability count wins.

Ground truth is the app's *future* report count (the half of its history
after its median report day). Apps are split in two: the model trains on
one half and all pairs are drawn from the other, so nothing is selected
on data it trained on.
"""

import itertools

import pytest

from repro.core.hypotheses import TOTAL_COUNT
from repro.core.pipeline import FeatureTable, train
from repro.cve.aggregate import score_app
from repro.cve.database import CVEDatabase


@pytest.fixture(scope="module")
def experiment(corpus, feature_table):
    apps = list(corpus.apps)
    train_names = {a.name for a in apps[::2]}
    train_idx = [i for i, a in enumerate(apps) if a.name in train_names]
    test_apps = [a for a in apps if a.name not in train_names]

    table = FeatureTable(
        tuple(feature_table.app_names[i] for i in train_idx),
        tuple(feature_table.rows[i] for i in train_idx),
        tuple(feature_table.summaries[i] for i in train_idx),
    )
    result = train(corpus, hypotheses=(TOTAL_COUNT,), table=table, k=10,
                   seed=42)

    # Known/future split per app at its median report day.
    known_db = CVEDatabase()
    future_counts = {}
    for app in test_apps:
        records = corpus.database.records_for(app.name)
        cut = records[len(records) // 2].day
        known = [r for r in records if r.day < cut]
        future_counts[app.name] = len(records) - len(known)
        for record in known:
            known_db.add(record)

    name_to_row = dict(zip(feature_table.app_names, feature_table.rows))
    predictions = {
        app.name: result.model.assess(name_to_row[app.name]).estimates[
            "total_count"
        ]
        for app in test_apps
    }
    wang = {app.name: score_app(known_db, app.name).risk_rank_key
            for app in test_apps}
    sizes = {app.name: app.profile.kloc for app in test_apps}
    return test_apps, future_counts, predictions, wang, sizes


def _pair_accuracy(test_apps, future, metric, lower_is_safer=True):
    correct = total = 0
    for a, b in itertools.combinations(test_apps, 2):
        fa, fb = future[a.name], future[b.name]
        if fa == fb:
            continue
        truth = a.name if fa < fb else b.name
        ma, mb = metric[a.name], metric[b.name]
        if ma == mb:
            continue
        choice = (a.name if ma < mb else b.name) if lower_is_safer else (
            a.name if ma > mb else b.name
        )
        total += 1
        if choice == truth:
            correct += 1
    return correct / total if total else 0.0, total


def test_bench_baseline_selectors(benchmark, experiment, table_printer):
    test_apps, future, predictions, wang, sizes = experiment

    def run():
        return {
            "LoC-naive (fewer lines)": _pair_accuracy(test_apps, future, sizes),
            "Wang CVSS aggregate (known CVEs)": _pair_accuracy(
                test_apps, future, wang
            ),
            "trained model (predicted count)": _pair_accuracy(
                test_apps, future, predictions
            ),
        }
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table_printer(
        "A2 — picking the app with fewer FUTURE vulnerabilities",
        ("selector", "pair accuracy", "pairs"),
        [(name, f"{acc:.1%}", n) for name, (acc, n) in results.items()],
    )

    model_acc = results["trained model (predicted count)"][0]
    loc_acc = results["LoC-naive (fewer lines)"][0]
    wang_acc = results["Wang CVSS aggregate (known CVEs)"][0]

    # Shape: the model beats the LoC status quo decisively. Wang's
    # aggregate is competitive *because* it sees each app's own history —
    # the paper's point is that it cannot rank new code at all (below).
    assert model_acc > loc_acc + 0.05
    assert model_acc > 0.6
    assert wang_acc > loc_acc  # history helps when you have it


def test_bench_baselines_new_code_scenario(benchmark, experiment,
                                           table_printer):
    """§1's library-selection scenario: candidates have NO CVE history.

    Wang's aggregate over zero known reports scores every candidate 0 and
    cannot choose; the LoC metric chooses but barely beats a coin toss;
    the model still ranks by code properties alone.
    """
    test_apps, future, predictions, _wang, sizes = experiment
    empty_db = CVEDatabase()
    wang_scores = {
        app.name: score_app(empty_db, app.name).risk_rank_key
        for app in test_apps
    }

    def run():
        return (
            _pair_accuracy(test_apps, future, wang_scores),
            _pair_accuracy(test_apps, future, sizes),
            _pair_accuracy(test_apps, future, predictions),
        )

    (wang_acc, wang_pairs), (loc_acc, _), (model_acc, _) = benchmark(run)

    table_printer(
        "A2 — same game for brand-new code (no CVE history available)",
        ("selector", "pair accuracy", "decidable pairs"),
        [
            ("Wang CVSS aggregate", "undefined (all ties)", wang_pairs),
            ("LoC-naive", f"{loc_acc:.1%}", "-"),
            ("trained model", f"{model_acc:.1%}", "-"),
        ],
    )
    assert wang_pairs == 0  # cannot decide a single pair
    assert model_acc > loc_acc
