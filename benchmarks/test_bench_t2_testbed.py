"""T2 — §5.1's testbed statistics.

Paper: "We currently use a training data set of 5,975 vulnerabilities
reported for the 164 selected applications", all with >= 5 years of CVE
history, split 126 C / 20 C++ / 6 Python / 12 Java.
"""

import pytest

from repro.synth import profiles as P


def test_bench_t2_testbed_statistics(benchmark, corpus, table_printer):
    db = corpus.database

    def select():
        return db.select_converging()

    converging = benchmark(select)

    by_lang = {}
    for app in corpus.apps:
        by_lang[app.profile.language] = by_lang.get(app.profile.language, 0) + 1

    n_apps, n_vulns = db.totals()
    rows = [
        ("applications", 164, n_apps),
        ("vulnerability reports", 5975, n_vulns),
        ("apps with >= 5y history", 164, len(converging)),
        ("primarily C", 126, by_lang.get("c", 0)),
        ("primarily C++", 20, by_lang.get("cpp", 0)),
        ("primarily Python", 6, by_lang.get("python", 0)),
        ("primarily Java", 12, by_lang.get("java", 0)),
    ]
    table_printer("§5.1 testbed (paper vs measured)",
                  ("quantity", "paper", "measured"), rows)

    for _, paper, measured in rows:
        assert paper == measured

    # Severity/impact labels exist for every report (the CVSS ground truth
    # Figure 4 trains against).
    sample = db.summary(corpus.apps[0].name)
    assert sample.n_total >= 2
    assert 0.0 < sample.mean_score <= 10.0
