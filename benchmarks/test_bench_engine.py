"""Engine micro-benchmark — serial vs parallel vs warm-cache extraction.

Times ``build_feature_table`` over a mid-sized corpus under the three
engine configurations and prints the speedup table. The *correctness*
claims (bit-identical rows everywhere) are asserted here too, but the
timing assertions are deliberately one-sided: parallel extraction may
not beat serial on a starved CI runner (this repo's reference machine
has a single core), whereas a warm cache must always win by a wide
margin because it does no extraction at all.

Uses ``time.perf_counter`` rather than pytest-benchmark so the CI leg
can run it with the baseline dependency set.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core.pipeline import build_feature_table
from repro.engine import ExtractionEngine, FeatureCache

N_APPS = 24


@pytest.fixture(scope="module")
def bench_corpus():
    from repro.synth import build_corpus

    return build_corpus(seed=5, limit=N_APPS)


def _timed(corpus, engine):
    start = time.perf_counter()
    table = build_feature_table(corpus, engine=engine)
    return time.perf_counter() - start, table


def test_bench_engine(bench_corpus, tmp_path, table_printer):
    obs.disable()
    cache = FeatureCache(str(tmp_path / "cache"))

    serial_s, serial = _timed(bench_corpus, ExtractionEngine(workers=1))
    par2_s, par2 = _timed(bench_corpus, ExtractionEngine(workers=2))
    par4_s, par4 = _timed(bench_corpus, ExtractionEngine(workers=4))
    cold_s, cold = _timed(
        bench_corpus, ExtractionEngine(workers=2, cache=cache)
    )
    warm_s, warm = _timed(
        bench_corpus, ExtractionEngine(workers=2, cache=cache)
    )

    per_app_ms = serial_s / N_APPS * 1e3
    rows = [
        ("serial (workers=1)", f"{serial_s:8.3f}", "1.00x", "baseline"),
        ("workers=2", f"{par2_s:8.3f}", f"{serial_s / par2_s:.2f}x", ""),
        ("workers=4", f"{par4_s:8.3f}", f"{serial_s / par4_s:.2f}x", ""),
        ("workers=2, cold cache", f"{cold_s:8.3f}",
         f"{serial_s / cold_s:.2f}x", "populates cache"),
        ("workers=2, warm cache", f"{warm_s:8.3f}",
         f"{serial_s / warm_s:.2f}x", "zero extractions"),
    ]
    table_printer(
        f"engine — {N_APPS}-app feature extraction "
        f"({per_app_ms:.0f} ms/app serial)",
        ("configuration", "seconds", "speedup", "note"),
        rows,
    )

    # Correctness is non-negotiable regardless of the machine.
    for table in (par2, par4, cold, warm):
        assert table.rows == serial.rows
        assert table.app_names == serial.app_names

    # A warm cache skips extraction entirely; even with process-pool
    # overhead it must clearly beat the serial cold path.
    assert warm_s < serial_s / 2, (
        f"warm cache {warm_s:.3f}s vs serial {serial_s:.3f}s"
    )
