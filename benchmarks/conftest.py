"""Benchmark fixtures: the full 164-app corpus and its feature table.

Heavy artefacts are session-scoped and built once; each benchmark then
times its experiment-specific computation and prints a paper-vs-measured
table (captured with ``-s`` or in the captured output section).

Every benchmark run also writes ``BENCH_run.json`` into the rootdir:
per-test wall-clock durations plus every paper-vs-measured table routed
through ``table_printer``. The CI bench-smoke leg uploads that file as
a workflow artifact, so the perf trajectory is recorded per commit.
"""

from __future__ import annotations

import json
import platform
import sys
import time

import pytest

#: Accumulated across the session; flushed by pytest_sessionfinish.
_RUN_RECORD = {
    "python": sys.version.split()[0],
    "platform": platform.platform(),
    "benchmarks": {},
    "analyzers": {},
    "tables": [],
}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    yield
    _RUN_RECORD["benchmarks"][item.nodeid] = {
        "seconds": round(time.perf_counter() - start, 6),
    }


def pytest_sessionfinish(session, exitstatus):
    _RUN_RECORD["exitstatus"] = int(exitstatus)
    out = session.config.rootpath / "BENCH_run.json"
    try:
        out.write_text(json.dumps(_RUN_RECORD, indent=2) + "\n")
    except OSError as exc:  # a read-only checkout must not fail the run
        print(f"warning: cannot write {out}: {exc}", file=sys.stderr)


@pytest.fixture(scope="session")
def corpus():
    """The full calibrated 164-application corpus (seed 42)."""
    from repro.synth import build_corpus

    return build_corpus(seed=42)


@pytest.fixture(scope="session")
def feature_table(corpus):
    """Testbed feature rows for every application (~35 s, built once)."""
    from repro.core.pipeline import build_feature_table

    return build_feature_table(corpus)


@pytest.fixture(scope="session")
def training(corpus, feature_table):
    """The fully trained model with 10-fold CV results."""
    from repro.core.pipeline import train

    return train(corpus, table=feature_table, k=10, seed=42)


def print_table(title, headers, rows):
    """Render one experiment's paper-vs-measured table to stdout."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def analyzer_recorder(request):
    """Record per-analyzer wall-clock seconds into BENCH_run.json.

    Call with a ``{analyzer_key: seconds}`` mapping (optionally more
    than once — later calls merge). The timings land under
    ``analyzers.<nodeid>`` so ``scripts/bench_compare.py`` consumers and
    the CI artifact can track which analyzer ate a regression, not just
    that extraction as a whole got slower.
    """
    def record(timings, label=None):
        key = request.node.nodeid if label is None else (
            f"{request.node.nodeid}[{label}]"
        )
        slot = _RUN_RECORD["analyzers"].setdefault(key, {})
        for name, seconds in timings.items():
            slot[name] = round(float(seconds), 6)
    return record


@pytest.fixture
def table_printer(request):
    """print_table, plus a copy of every table into BENCH_run.json."""
    def print_and_record(title, headers, rows):
        print_table(title, headers, rows)
        _RUN_RECORD["tables"].append({
            "test": request.node.nodeid,
            "title": title,
            "headers": [str(h) for h in headers],
            "rows": [[str(cell) for cell in row] for row in rows],
        })
    return print_and_record
