"""Benchmark fixtures: the full 164-app corpus and its feature table.

Heavy artefacts are session-scoped and built once; each benchmark then
times its experiment-specific computation and prints a paper-vs-measured
table (captured with ``-s`` or in the captured output section).
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def corpus():
    """The full calibrated 164-application corpus (seed 42)."""
    from repro.synth import build_corpus

    return build_corpus(seed=42)


@pytest.fixture(scope="session")
def feature_table(corpus):
    """Testbed feature rows for every application (~35 s, built once)."""
    from repro.core.pipeline import build_feature_table

    return build_feature_table(corpus)


@pytest.fixture(scope="session")
def training(corpus, feature_table):
    """The fully trained model with 10-fold CV results."""
    from repro.core.pipeline import train

    return train(corpus, table=feature_table, k=10, seed=42)


def print_table(title, headers, rows):
    """Render one experiment's paper-vs-measured table to stdout."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table_printer():
    return print_table
