"""S — the Shin et al. anchor: predicting vulnerable *files*.

Paper (§4): complexity, code churn, and developer-activity metrics
"predict 80% of the vulnerable files". The bench runs the file-level
experiment over every file of every corpus application with 10-fold CV
and reports recall (the paper's headline), precision, and AUC, plus an
ablation over the three metric dimensions Shin et al. distinguish.
"""

import pytest

from repro.core.filelevel import (
    build_file_dataset,
    evaluate_file_prediction,
)
from repro.ml.crossval import cross_validate_classifier
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocess import StandardScaler

PAPER_RECALL = 0.80

COMPLEXITY_FEATURES = (
    "loc", "comment_ratio", "preproc_lines", "cyclomatic",
    "halstead_volume", "n_functions", "mean_params", "max_nesting",
    "mean_length", "n_variables",
)
CHURN_FEATURES = ("churn_commits", "churn_total", "churn_per_commit",
                  "days_active")
DEVELOPER_FEATURES = ("n_authors",)


def test_bench_shin_vulnerable_files(benchmark, corpus, table_printer):
    result = benchmark.pedantic(
        evaluate_file_prediction,
        kwargs=dict(corpus=corpus, k=10, seed=0),
        rounds=1,
        iterations=1,
    )

    table_printer(
        "Shin et al. — vulnerable-file prediction (paper vs measured)",
        ("quantity", "paper", "measured"),
        [
            ("recall (vulnerable files found)", f"{PAPER_RECALL:.0%}",
             f"{result.recall:.1%}"),
            ("precision", "-", f"{result.precision:.1%}"),
            ("AUC", "-", f"{result.auc:.3f}"),
            ("files", "-", result.n_files),
            ("vulnerable files", "-", result.n_vulnerable),
        ],
    )

    # Shape: recall in the neighbourhood of the published 80%.
    assert 0.70 <= result.recall <= 0.95
    assert result.auc > 0.8


def test_bench_shin_dimension_ablation(corpus, table_printer, benchmark):
    """Which of Shin's three dimensions carries the signal here."""
    dataset = build_file_dataset(corpus)
    subsets = {
        "complexity only": COMPLEXITY_FEATURES,
        "churn only": CHURN_FEATURES + DEVELOPER_FEATURES,
        "all dimensions": COMPLEXITY_FEATURES + CHURN_FEATURES
        + DEVELOPER_FEATURES,
    }

    def run():
        out = {}
        for name, features in subsets.items():
            ds = dataset.select_features(list(features))
            out[name] = cross_validate_classifier(
                ds,
                lambda: LogisticRegression(max_iter=400),
                k=10,
                seed=0,
                transform_factory=StandardScaler,
            )["auc"]
        return out

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer(
        "Shin et al. — per-dimension AUC",
        ("feature set", "auc"),
        [(name, f"{auc:.3f}") for name, auc in aucs.items()],
    )
    assert aucs["all dimensions"] >= max(
        aucs["complexity only"], aucs["churn only"]
    ) - 0.02
