"""E2 — dynamic traces: "may further yield additional insights" (§5.3).

The paper hedges: "dynamic properties of a program may further yield
additional insights or accuracy. For ease of deployment … we focus on
static analysis." The bench tests the hedge: train once on the static
vector and once with the simulated dynamic-trace group added, and report
whether accuracy moves.
"""

import pytest

from repro.core.features import extract_features
from repro.core.hypotheses import (
    MANY_HIGH_SEVERITY,
    STACK_OVERFLOW,
    TOTAL_COUNT,
)
from repro.core.pipeline import FeatureTable, train

HYPOTHESES = (MANY_HIGH_SEVERITY, STACK_OVERFLOW, TOTAL_COUNT)


@pytest.fixture(scope="module")
def dynamic_table(corpus):
    """Feature table with dynamic traces included (one extra CFG pass)."""
    rows = []
    names = []
    summaries = []
    for app in corpus.apps:
        names.append(app.name)
        rows.append(
            extract_features(
                app.codebase,
                nominal_kloc=app.profile.kloc,
                history=corpus.histories.get(app.name),
                include_dynamic=True,
            )
        )
        summaries.append(corpus.database.summary(app.name))
    return FeatureTable(tuple(names), tuple(rows), tuple(summaries))


def _headline(result, hypothesis):
    metrics = result.cv_results[hypothesis.hypothesis_id].metrics
    return metrics["auc"] if "auc" in metrics else metrics["r2"]


def test_bench_dynamic_feature_ablation(
    benchmark, corpus, feature_table, dynamic_table, table_printer
):
    def run():
        static = train(corpus, hypotheses=HYPOTHESES, table=feature_table,
                       k=10, seed=42)
        dynamic = train(corpus, hypotheses=HYPOTHESES, table=dynamic_table,
                        k=10, seed=42)
        return static, dynamic

    static, dynamic = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for hyp in HYPOTHESES:
        s = _headline(static, hyp)
        d = _headline(dynamic, hyp)
        rows.append((hyp.hypothesis_id, f"{s:.3f}", f"{d:.3f}",
                     f"{d - s:+.3f}"))
    table_printer(
        "E2 — static vs static+dynamic features (AUC / R^2)",
        ("hypothesis", "static", "+dynamic", "delta"),
        rows,
    )

    # The paper's hedge, quantified: dynamic traces must not *hurt*
    # materially; whether they help is an empirical finding we record.
    for hyp in HYPOTHESES:
        assert _headline(dynamic, hyp) > _headline(static, hyp) - 0.06
