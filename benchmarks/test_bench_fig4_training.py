"""F4 — Figure 4: the training phase of the security evaluation model.

The paper proposes (but does not evaluate) this pipeline; the numbers
here are therefore the reproduction's *forward prediction* of what the
proposal yields on a corpus matching the paper's published statistics.
Shape targets: every hypothesis is learnable well above chance, the
trained model beats the ZeroR floor, and its weights are interpretable
(§5.3).
"""

import pytest

from repro.core.pipeline import train
from repro.ml.baselines import ZeroR
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LinearRegressor
from repro.ml.naive_bayes import GaussianNB
from repro.ml.svm import LinearSVM


def test_bench_fig4_training(benchmark, corpus, feature_table, training,
                             table_printer):
    result = benchmark.pedantic(
        train,
        kwargs=dict(corpus=corpus, table=feature_table, k=10, seed=42),
        rounds=1,
        iterations=1,
    )

    zero = train(
        corpus, table=feature_table, classifier_factory=ZeroR, k=10, seed=42
    )
    rows = []
    for hyp_id in sorted(result.cv_results):
        metrics = result.cv_results[hyp_id].metrics
        if "auc" in metrics:
            rows.append(
                (hyp_id, "AUC", f"{metrics['auc']:.3f}",
                 f"{zero.cv_results[hyp_id]['auc']:.3f}",
                 f"acc={metrics['accuracy']:.3f} f1={metrics['f1']:.3f}")
            )
        else:
            rows.append(
                (hyp_id, "R^2", f"{metrics['r2']:.3f}", "0.000",
                 f"rmse={metrics['rmse']:.3f} "
                 f"within-order={metrics['within_order']:.2f}")
            )
    table_printer(
        "Figure 4 — per-hypothesis 10-fold CV (model vs ZeroR floor)",
        ("hypothesis", "metric", "model", "floor", "detail"),
        rows,
    )

    weights = result.model.top_properties("many_high_severity", k=6)
    table_printer(
        "§5.3 — top weighted properties for many_high_severity",
        ("property", "weight"),
        [(name, f"{w:+.3f}") for name, w in weights],
    )

    # Shape: every classification hypothesis beats chance and the floor.
    for hyp_id in result.model.classification_ids:
        auc = result.cv_results[hyp_id]["auc"]
        assert auc > 0.65, f"{hyp_id} unlearnable (AUC={auc:.3f})"
        assert auc > zero.cv_results[hyp_id]["auc"]
    # Count regressions clear the LoC-only ceiling (~0.25 R^2, Figure 2).
    assert result.cv_results["total_count"]["r2"] > 0.30
    assert result.cv_results["high_severity_count"]["r2"] > 0.25


def test_bench_fig4_learner_families(corpus, feature_table, table_printer,
                                     benchmark):
    """The paper leaves the learner open ("e.g., Weka"): compare families."""
    from repro.core.hypotheses import MANY_HIGH_SEVERITY

    factories = {
        "logistic": None,  # pipeline default
        "naive-bayes": GaussianNB,
        "random-forest": lambda: RandomForestClassifier(n_trees=25, seed=1),
        "linear-svm": lambda: LinearSVM(epochs=30, seed=1),
        "zeror": ZeroR,
    }

    def run():
        out = {}
        for name, factory in factories.items():
            kwargs = dict(corpus=corpus, table=feature_table, k=10, seed=42,
                          hypotheses=(MANY_HIGH_SEVERITY,))
            if factory is not None:
                kwargs["classifier_factory"] = factory
            out[name] = train(**kwargs).cv_results[
                MANY_HIGH_SEVERITY.hypothesis_id
            ]["auc"]
        return out

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    # §5.2's "filtering features that are irrelevant": same learner on the
    # top-15 information-gain features.
    filtered = train(
        corpus, table=feature_table, k=10, seed=42,
        hypotheses=(MANY_HIGH_SEVERITY,), top_k_features=15,
    ).cv_results[MANY_HIGH_SEVERITY.hypothesis_id]["auc"]
    aucs["logistic+top15-features"] = filtered
    table_printer(
        "Figure 4 — learner families on many_high_severity (AUC)",
        ("learner", "auc"),
        [(name, f"{auc:.3f}") for name, auc in sorted(aucs.items())],
    )
    assert max(aucs.values()) == max(
        v for k, v in aucs.items() if k != "zeror"
    )
    assert aucs["zeror"] == pytest.approx(0.5, abs=0.05)
