"""E3 — validating the §5.3 change gate at corpus scale.

The paper's promised workflow — "whether a code change has raised or
lowered the risk" — gets a ground-truthed evaluation: every corpus app
receives one labelled change (harden / regress / neutral, round-robin)
and the trained evaluator's verdict is scored against the label. The
paper publishes no numbers here; the bench records how well its proposal
actually works on the calibrated corpus.
"""

import pytest

from repro.core.evaluator import ChangeEvaluator, Verdict
from repro.synth.versions import version_pairs

#: A verdict is correct if it moves in the labelled direction; for
#: neutral changes both NEUTRAL and a sub-band drift count.
_EXPECTED = {
    "harden": (Verdict.IMPROVED, Verdict.NEUTRAL),
    "regress": (Verdict.REGRESSED,),
    "neutral": (Verdict.NEUTRAL,),
}


def test_bench_change_gate(benchmark, corpus, training, table_printer):
    evaluator = ChangeEvaluator(training.model)
    pairs = version_pairs(corpus.apps, seed=42)

    def run():
        outcomes = {kind: [0, 0] for kind in ("harden", "regress", "neutral")}
        deltas = {kind: [] for kind in outcomes}
        for pair in pairs:
            delta = evaluator.risk_delta(
                pair.before,
                pair.after,
                nominal_kloc_before=None,
                nominal_kloc_after=None,
            )
            correct = delta.verdict in _EXPECTED[pair.kind]
            outcomes[pair.kind][0] += int(correct)
            outcomes[pair.kind][1] += 1
            deltas[pair.kind].append(delta.overall_delta)
        return outcomes, deltas

    outcomes, deltas = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for kind in ("harden", "regress", "neutral"):
        correct, total = outcomes[kind]
        mean_delta = sum(deltas[kind]) / len(deltas[kind])
        rows.append(
            (kind, f"{correct}/{total}", f"{correct / total:.1%}",
             f"{mean_delta:+.3f}")
        )
    table_printer(
        "E3 — change-gate verdicts vs ground-truth change labels",
        ("change kind", "correct", "accuracy", "mean risk delta"),
        rows,
    )

    # Shape: risk moves in the right direction on average for every kind,
    # and regressions — the case a CI gate exists to catch — are caught
    # for a solid majority of apps.
    harden_mean = sum(deltas["harden"]) / len(deltas["harden"])
    regress_mean = sum(deltas["regress"]) / len(deltas["regress"])
    neutral_mean = sum(deltas["neutral"]) / len(deltas["neutral"])
    assert regress_mean > neutral_mean > harden_mean - 1e-9
    regress_correct, regress_total = outcomes["regress"]
    assert regress_correct / regress_total > 0.5
    neutral_correct, neutral_total = outcomes["neutral"]
    assert neutral_correct / neutral_total > 0.6
