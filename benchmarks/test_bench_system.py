"""E1 — whole-system evaluation (§5.3 future work, implemented here).

No published numbers exist (the paper only poses the question), so the
bench validates the qualitative laws §5.3 states: total system risk is
dominated by the weakest link, network-facing placement matters, and
containment boundaries reduce the damage a privileged component adds.
Systems are composed from corpus applications so the model operates
in-distribution.
"""

import pytest

from repro.core.system import Component, SystemEvaluator, SystemProfile


@pytest.fixture(scope="module")
def ranked_apps(corpus, training, feature_table):
    """Corpus apps ranked by the model's own risk estimate."""
    name_to_row = dict(zip(feature_table.app_names, feature_table.rows))
    scored = [
        (training.model.assess(name_to_row[app.name]).overall_risk, app)
        for app in corpus.apps
    ]
    scored.sort(key=lambda pair: pair[0])
    return scored


def component_for(app, **kwargs):
    return Component(
        app.name, app.codebase, nominal_kloc=app.profile.kloc, **kwargs
    )


def test_bench_system_weakest_link(benchmark, ranked_apps, training,
                                   table_printer):
    evaluator = SystemEvaluator(training.model, containment_discount=0.3)
    (_, safest), (risk_hi, riskiest) = ranked_apps[0], ranked_apps[-1]
    (_, median_app) = ranked_apps[len(ranked_apps) // 2]

    def build(with_risky):
        system = SystemProfile("stack")
        system.add(component_for(safest, exposure="internet", domain="app"))
        system.add(component_for(median_app, exposure="internal",
                                 domain="app"))
        if with_risky:
            system.add(component_for(riskiest, exposure="internet",
                                     domain="app"))
        return system

    def run():
        return (
            evaluator.evaluate(build(False)),
            evaluator.evaluate(build(True)),
        )

    without, with_risky = benchmark(run)

    table_printer(
        "E1 — weakest link dominates system risk",
        ("configuration", "weakest link", "entry risk", "system risk"),
        [
            ("safe + median", without.weakest_link,
             f"{without.entry_risk:.2f}", f"{without.system_risk:.2f}"),
            ("+ riskiest app", with_risky.weakest_link,
             f"{with_risky.entry_risk:.2f}", f"{with_risky.system_risk:.2f}"),
        ],
    )

    assert with_risky.system_risk >= without.system_risk
    assert with_risky.weakest_link == riskiest.name


def test_bench_system_containment(benchmark, ranked_apps, training,
                                  table_printer):
    _, risky = ranked_apps[-1]
    _, privileged_app = ranked_apps[-2]

    def evaluate(discount, same_domain):
        evaluator = SystemEvaluator(training.model,
                                    containment_discount=discount)
        system = SystemProfile("stack")
        system.add(component_for(risky, exposure="internet", domain="app"))
        system.add(
            component_for(
                privileged_app, exposure="local",
                domain="app" if same_domain else "system", privileged=True,
            )
        )
        return evaluator.evaluate(system)

    def run():
        return (
            evaluate(0.3, same_domain=True),
            evaluate(0.3, same_domain=False),
            evaluate(0.0, same_domain=False),
        )

    flat, contained, airgapped = benchmark(run)

    table_printer(
        "E1 — containment boundaries discount privileged escalation",
        ("configuration", "system risk"),
        [
            ("privileged daemon in the same domain", f"{flat.system_risk:.3f}"),
            ("behind a containment boundary (0.3)",
             f"{contained.system_risk:.3f}"),
            ("perfect boundary (discount 0.0)",
             f"{airgapped.system_risk:.3f}"),
        ],
    )

    assert flat.system_risk >= contained.system_risk >= airgapped.system_risk
