"""F2/T3 — Figure 2: LoC vs number of vulnerabilities.

Paper: over 164 apps with >= 5-year CVE histories,
``log10(#vuln) = 0.17 + 0.39 * log10(kLoC)`` with R² = 24.66% — i.e. LoC
explains only a quarter of the variance even bucketed by order of
magnitude. The bench regenerates the scatter from the corpus, fits the
trend, prints per-language series, and reproduces §3.1's bucketing
lesson.
"""

import pytest

import math

from repro.stats.bucketing import bucketed_means
from repro.stats.inference import bootstrap_ci, permutation_test
from repro.stats.regression import fit_loglog
from repro.synth import profiles as P

PAPER_SLOPE = 0.39
PAPER_INTERCEPT = 0.17
PAPER_R2 = 0.2466


def test_bench_fig2_loc_vs_vulns(benchmark, corpus, table_printer):
    profiles = [app.profile for app in corpus.apps]
    sizes = [p.kloc for p in profiles]
    counts = [p.n_vulns for p in profiles]

    fit = benchmark(fit_loglog, sizes, counts)

    table_printer(
        "Figure 2 — log-log trend of #vulns on kLoC (paper vs measured)",
        ("quantity", "paper", "measured"),
        [
            ("slope", PAPER_SLOPE, f"{fit.slope:.3f}"),
            ("intercept", PAPER_INTERCEPT, f"{fit.intercept:.3f}"),
            ("R^2", f"{PAPER_R2:.2%}", f"{fit.r_squared:.2%}"),
            ("n apps", 164, len(profiles)),
            ("total vulns", 5975, sum(counts)),
        ],
    )

    lang_rows = []
    for lang, paper_n in sorted(P.APPS_PER_LANGUAGE.items()):
        members = [p for p in profiles if p.language == lang]
        mean_v = sum(p.n_vulns for p in members) / len(members)
        lang_rows.append((lang, paper_n, len(members), f"{mean_v:.1f}"))
    table_printer(
        "Figure 2 — per-language series",
        ("language", "paper apps", "measured apps", "mean vulns"),
        lang_rows,
    )

    # Statistical backing for §3.1's significance language.
    log_sizes = [math.log10(v) for v in sizes]
    log_counts = [math.log10(v) for v in counts]
    from repro.stats.regression import r_squared

    ci = bootstrap_ci(log_sizes, log_counts, r_squared, n_resamples=400,
                      seed=1)
    perm = permutation_test(log_sizes, log_counts,
                            lambda a, b: r_squared(a, b), n_permutations=300,
                            seed=1)
    print(f"\nR^2 bootstrap 95% CI: [{ci.low:.3f}, {ci.high:.3f}]  "
          f"permutation p-value: {perm.p_value:.4f}")
    # Association is real (p small) but R^2 is pinned well below 0.5:
    # significant AND weak, exactly the paper's reading.
    assert perm.p_value < 0.01
    assert ci.high < 0.5

    means = bucketed_means(sizes, counts)
    table_printer(
        "§3.1 — mean vulns per kLoC order-of-magnitude bucket",
        ("bucket (10^k kLoC)", "mean vulns"),
        [(b, f"{m:.1f}") for b, m in means],
    )

    # Shape: published line within tight tolerance, R^2 weak (~25%), and
    # the bucketed means rise with size (weak positive trend).
    assert fit.slope == pytest.approx(PAPER_SLOPE, abs=0.02)
    assert fit.intercept == pytest.approx(PAPER_INTERCEPT, abs=0.03)
    assert fit.r_squared == pytest.approx(PAPER_R2, abs=0.02)
    assert means[-1][1] > means[0][1]
    # Java apps trend lower (the paper's only language observation).
    java_mean = sum(
        p.n_vulns for p in profiles if p.language == "java"
    ) / P.APPS_PER_LANGUAGE["java"]
    c_mean = sum(
        p.n_vulns for p in profiles if p.language == "c"
    ) / P.APPS_PER_LANGUAGE["c"]
    assert java_mean < c_mean


def test_bench_fig2_sampled_loc_counting(benchmark, corpus, table_printer):
    """The cloc-equivalent itself, timed over every sampled codebase."""
    from repro.analysis import loc

    def count_all():
        return sum(loc.count_codebase(app.codebase).code for app in corpus.apps)

    total = benchmark(count_all)
    print(f"\nsampled corpus code lines (all 164 apps): {total}")
    assert total > 0
