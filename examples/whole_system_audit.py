"""Whole-system audit: applying the metric to a container image (§5.3).

The paper's future-work question: "can we use the same approach of
evaluating application programs to evaluate whole systems? … A goal for
future work is to apply the metric in to a VM or Docker image, capturing
the risk for not just the application, but its supporting
infrastructure."

This example audits a three-component web stack twice — once with every
service in a single containment domain, once with the privileged log
daemon isolated behind a boundary — and shows the weakest link, the
entry risk, and how containment changes the total system risk.
"""

from repro.core import train
from repro.core.system import (
    Component,
    SystemEvaluator,
    SystemProfile,
    format_system_report,
)
from repro.lang import Codebase
from repro.synth import build_corpus

WEB_FRONTEND = {
    "web.c": """\
#include <stdio.h>
#include <string.h>

int serve(int port) {
    int sock = socket(AF_INET, SOCK_STREAM, 0);
    listen(sock, 64);
    while (1) {
        char req[256];
        int conn = accept(sock, addr, len);
        recv(conn, req, 256, 0);
        char path[64];
        strcpy(path, req);
        printf(req);
    }
    return 0;
}
""",
}

DB_ENGINE = {
    "db.c": """\
#include <stdlib.h>
#include <string.h>

int query(const char *text, char *out, unsigned cap) {
    if (text == NULL || cap == 0) {
        return -1;
    }
    strncpy(out, text, cap - 1);
    out[cap - 1] = 0;
    return 0;
}
""",
}

LOG_DAEMON = {
    "logd.c": """\
#include <stdio.h>
#include <string.h>

int rotate(const char *path) {
    char cmd[128];
    sprintf(cmd, path);
    system(cmd);
    setuid(0);
    return 0;
}
""",
}


def build_system(name: str, isolated_logd: bool) -> SystemProfile:
    system = SystemProfile(name)
    system.add(
        Component("web-frontend", Codebase.from_sources("web", WEB_FRONTEND),
                  exposure="internet", domain="app")
    )
    system.add(
        Component("db-engine", Codebase.from_sources("db", DB_ENGINE),
                  exposure="internal", domain="app")
    )
    system.add(
        Component(
            "log-daemon", Codebase.from_sources("logd", LOG_DAEMON),
            exposure="local",
            domain="system" if isolated_logd else "app",
            privileged=True,
        )
    )
    return system


def main() -> int:
    print("training the metric (40-app corpus) ...")
    corpus = build_corpus(seed=42, limit=40)
    evaluator = SystemEvaluator(train(corpus, k=5, seed=42).model,
                                containment_discount=0.3)

    flat = evaluator.evaluate(build_system("web-stack (flat)", False))
    print()
    print(format_system_report(flat))

    contained = evaluator.evaluate(build_system("web-stack (contained)", True))
    print()
    print(format_system_report(contained))

    print()
    print(f"containment effect: system risk {flat.system_risk:.2f} -> "
          f"{contained.system_risk:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
