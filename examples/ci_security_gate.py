"""A CI security gate: did this change raise the risk of a vulnerability?

§5.3: "Based on these code properties, the classifier can give the
developer an evaluation of, say, whether a code change has raised or
lowered the risk than the previous version of the code." This example
drives the *public* gate API (`repro.api.gate_tree` — the same code
path behind `repro gate` and the daemon's `POST /gate`) on both sides:
a hardening patch (bounded copies, parameterised formats) and a
regressing patch (new attacker-facing exec path), and prints each
gate report with its per-file driving feature changes.

Exit status mimics a CI gate: `EXIT_GATE_BREACH` (3) if the *last*
evaluated change breached the threshold.
"""

import repro
from repro.gate import format_gate_report
from repro.lang import Codebase

#: Breach when the risk delta is strictly above this; exactly at it
#: passes, and an improving (negative) delta can never breach.
THRESHOLD = 0.0

BASE = {
    "service.c": """\
#include <stdio.h>
#include <string.h>

int lookup(char *user, char *out) {
    char query[128];
    sprintf(query, user);
    strcpy(out, query);
    return 0;
}

int main(int argc, char **argv) {
    char result[64];
    if (argc > 1) {
        lookup(argv[1], result);
    }
    return 0;
}
""",
}

HARDENED = {
    "service.c": """\
#include <stdio.h>
#include <string.h>

int lookup(const char *user, char *out, size_t cap) {
    char query[128];
    snprintf(query, sizeof(query), "%s", user);
    strncpy(out, query, cap - 1);
    out[cap - 1] = 0;
    return 0;
}

int main(int argc, char **argv) {
    char result[64];
    if (argc > 1) {
        lookup(argv[1], result, sizeof(result));
    }
    return 0;
}
""",
}

REGRESSED = {
    "service.c": BASE["service.c"],
    "admin.c": """\
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

int admin_exec(char *request) {
    char cmd[64];
    int sock = socket(AF_INET, SOCK_STREAM, 0);
    listen(sock, 4);
    recv(sock, cmd, 64, 0);
    strcat(cmd, request);
    system(cmd);
    gets(cmd);
    return 0;
}
""",
}


def main() -> int:
    print("training the gate's model (40-app corpus) ...")
    model = repro.train_model(seed=42, apps=40, folds=5)

    base = Codebase.from_sources("service", BASE)

    print("\n--- change 1: hardening patch -------------------------------")
    report = repro.gate_tree(
        base, Codebase.from_sources("service", HARDENED),
        model=model, threshold=THRESHOLD)
    print(format_gate_report(report))

    print("\n--- change 2: new remote admin endpoint ----------------------")
    report = repro.gate_tree(
        base, Codebase.from_sources("service", REGRESSED),
        model=model, threshold=THRESHOLD)
    print(format_gate_report(report))

    if report.breach:
        print("\nCI gate: BREACH (risk delta above threshold)")
        return 3
    print("\nCI gate: pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
