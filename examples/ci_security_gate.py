"""A CI security gate: did this change raise the risk of a vulnerability?

§5.3: "Based on these code properties, the classifier can give the
developer an evaluation of, say, whether a code change has raised or
lowered the risk than the previous version of the code." This example
plays both sides: a hardening patch (bounded copies, parameterised
queries) and a regressing patch (new attacker-facing exec path), and
shows the gate verdict plus the flagged properties for each.

Exit status mimics a CI gate: nonzero if the *last* evaluated change
regressed.
"""

from repro.core import ChangeEvaluator, format_delta, train
from repro.core.evaluator import Verdict
from repro.lang import Codebase
from repro.synth import build_corpus

BASE = {
    "service.c": """\
#include <stdio.h>
#include <string.h>

int lookup(char *user, char *out) {
    char query[128];
    sprintf(query, user);
    strcpy(out, query);
    return 0;
}

int main(int argc, char **argv) {
    char result[64];
    if (argc > 1) {
        lookup(argv[1], result);
    }
    return 0;
}
""",
}

HARDENED = {
    "service.c": """\
#include <stdio.h>
#include <string.h>

int lookup(const char *user, char *out, size_t cap) {
    char query[128];
    snprintf(query, sizeof(query), "%s", user);
    strncpy(out, query, cap - 1);
    out[cap - 1] = 0;
    return 0;
}

int main(int argc, char **argv) {
    char result[64];
    if (argc > 1) {
        lookup(argv[1], result, sizeof(result));
    }
    return 0;
}
""",
}

REGRESSED = {
    "service.c": BASE["service.c"],
    "admin.c": """\
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

int admin_exec(char *request) {
    char cmd[64];
    int sock = socket(AF_INET, SOCK_STREAM, 0);
    listen(sock, 4);
    recv(sock, cmd, 64, 0);
    strcat(cmd, request);
    system(cmd);
    gets(cmd);
    return 0;
}
""",
}


def main() -> int:
    print("training the gate's model (40-app corpus) ...")
    corpus = build_corpus(seed=42, limit=40)
    evaluator = ChangeEvaluator(train(corpus, k=5, seed=42).model)

    base = Codebase.from_sources("service", BASE)

    print("\n--- change 1: hardening patch -------------------------------")
    delta = evaluator.risk_delta(base, Codebase.from_sources("service", HARDENED))
    print(format_delta("bounded-copies patch", delta))

    print("\n--- change 2: new remote admin endpoint ----------------------")
    delta = evaluator.risk_delta(base, Codebase.from_sources("service", REGRESSED))
    print(format_delta("admin-exec patch", delta))

    if delta.verdict is Verdict.REGRESSED:
        print("\nCI gate: BLOCK (risk increased)")
        return 1
    print("\nCI gate: pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
