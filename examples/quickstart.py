"""Quickstart: train the security metric and assess a codebase.

Runs the paper's Figure-4 loop end to end:

1. build a calibrated corpus (stand-in for the CVE database + app sources);
2. run the static-analysis testbed and train the per-hypothesis model;
3. assess a never-seen codebase and print the developer-facing report.

Usage::

    python examples/quickstart.py [path-to-source-tree]

With no argument, a small demo C program is assessed.
"""

import sys

from repro.core import ChangeEvaluator, extract_features, format_assessment, train
from repro.lang import Codebase
from repro.synth import build_corpus

DEMO_SOURCES = {
    "server.c": """\
#include <stdio.h>
#include <string.h>

static int handle(char *request) {
    char buf[64];
    strcpy(buf, request);          /* unbounded copy of network input */
    printf(request);               /* format string from the wire */
    return 0;
}

int main(int argc, char **argv) {
    int sock = socket(AF_INET, SOCK_STREAM, 0);
    listen(sock, 16);
    while (1) {
        char req[256];
        recv(sock, req, 256, 0);
        handle(req);
    }
    return 0;
}
""",
}


def main() -> int:
    print("building calibrated corpus (40 apps for a fast demo) ...")
    corpus = build_corpus(seed=42, limit=40)

    print("running the testbed + training with 5-fold cross-validation ...")
    result = train(corpus, k=5, seed=42)
    for hyp_id, metric, value in result.summary_rows():
        print(f"  {hyp_id:24s} CV {metric} = {value:.3f}")

    if len(sys.argv) > 1:
        codebase = Codebase.from_directory(sys.argv[1])
        print(f"\nassessing {sys.argv[1]} ({len(codebase)} source files)")
    else:
        codebase = Codebase.from_sources("demo-server", DEMO_SOURCES)
        print("\nassessing the bundled demo server")

    evaluator = ChangeEvaluator(result.model)
    features = extract_features(codebase)
    assessment = result.model.assess(features)
    print()
    print(format_assessment(codebase.name, assessment, result.model, features))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
