"""Export the testbed's dataset to ARFF for Weka (§5.2's intended tool).

Figure 4 names "a data mining tool, such as Weka" as the training engine.
This example builds the feature table over a small corpus and writes one
ARFF file per hypothesis — files a stock Weka Explorer opens directly —
plus the CVE corpus as an NVD-style JSON feed, so the whole training
input can leave this package.
"""

import os

from repro.core.hypotheses import DEFAULT_HYPOTHESES
from repro.core.pipeline import build_feature_table
from repro.cve import io as cve_io
from repro.ml import arff
from repro.synth import build_corpus

OUT_DIR = "weka-export"


def main() -> int:
    os.makedirs(OUT_DIR, exist_ok=True)
    print("building a 40-app corpus and its feature table ...")
    corpus = build_corpus(seed=42, limit=40)
    table = build_feature_table(corpus)

    for hypothesis in DEFAULT_HYPOTHESES:
        dataset = table.dataset_for(hypothesis)
        if hypothesis.kind == "classification":
            # Weka prefers nominal class labels.
            labels = ["yes" if y == 1 else "no" for y in dataset.y]
            dataset = dataset.with_target(labels)
        path = os.path.join(OUT_DIR, f"{hypothesis.hypothesis_id}.arff")
        arff.dump(dataset, path, class_name=hypothesis.hypothesis_id)
        print(f"  wrote {path}  ({dataset.n_rows} instances, "
              f"{dataset.n_features} attributes)")

    feed = os.path.join(OUT_DIR, "cve-corpus.json")
    cve_io.dump(corpus.database, feed)
    apps, vulns = corpus.database.totals()
    print(f"  wrote {feed}  ({vulns} reports, {apps} applications)")

    # Round-trip sanity: the files we wrote must read back identically.
    sample = arff.load(os.path.join(OUT_DIR, "total_count.arff"))
    assert sample.n_rows == len(corpus.apps)
    print("\nround-trip check passed; open the .arff files in Weka Explorer.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
