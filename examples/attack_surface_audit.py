"""Attack-surface deep dive: RASQ and attack graphs (§4.1 features).

The prediction model consumes these as two numbers, but they are useful
on their own: this example audits a network daemon, printing the RASQ
channel breakdown, the derived exploit set, and the cheapest attack path
to root — then shows how one hardening step (dropping the setuid call)
breaks the escalation chain.
"""

from repro.lang import Codebase
from repro.surface import AttackGraph, exploits_from_surface, rasq

DAEMON = {
    "daemon.c": """\
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

int serve(int port) {
    int sock = socket(AF_INET, SOCK_STREAM, 0);
    bind(sock, addr, len);
    listen(sock, 64);
    while (1) {
        int conn = accept(sock, addr, len);
        char req[256];
        recv(conn, req, 256, 0);
        handle_request(req);
    }
}

int handle_request(char *req) {
    char path[128];
    FILE *log = fopen("/var/log/d.log", "a");
    fwrite(req, 1, strlen(req), log);
    if (strncmp(req, "RUN ", 4) == 0) {
        system(req + 4);
    }
    setuid(0);
    return 0;
}
""",
}


def audit(name, sources):
    codebase = Codebase.from_sources(name, sources)
    surface = rasq.measure_codebase(codebase)
    print(f"== {name} ==")
    print(f"RASQ score: {surface.rasq:.1f}   network-facing: "
          f"{surface.network_facing}")
    print("channels:")
    for channel, count in sorted(surface.channel_counts.items()):
        if count:
            weight = rasq.CHANNEL_WEIGHTS[channel]
            print(f"  {channel:16s} x{count}  (weight {weight})")
    print(f"public entry points: {surface.n_public_methods}   "
          f"privilege sites: {surface.n_privilege_sites}")

    exploits = exploits_from_surface(surface)
    print("derived exploits:")
    for e in exploits:
        pre = ",".join(sorted(e.preconditions)) or "-"
        post = ",".join(sorted(e.postconditions))
        print(f"  {e.name:22s} {pre:14s} -> {post:10s} "
              f"complexity {e.complexity:.2f}")

    graph = AttackGraph(exploits, initial=("remote", "local"))
    if graph.goal_reachable:
        path = graph.shortest_attack_path()
        cost = graph.cheapest_attack_cost()
        print(f"root reachable via {len(path)} steps: {' -> '.join(path)} "
              f"(cost {cost:.2f}); {graph.attack_path_count()} total paths")
        cut = graph.critical_exploits()
        print(f"patch to protect root: {', '.join(sorted(cut))}")
        spof = graph.single_points_of_failure()
        if spof:
            print(f"single points of failure: {', '.join(spof)}")
    else:
        print("root NOT reachable from the modelled entry points")
    print()


def main() -> int:
    audit("network-daemon", DAEMON)

    hardened = {
        "daemon.c": DAEMON["daemon.c"].replace("    setuid(0);\n", "")
    }
    audit("network-daemon (setuid removed)", hardened)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
