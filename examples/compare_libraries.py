"""Choosing between two library implementations (§1's motivating case).

"In selecting between two library implementations for use in a web
service, our proposed metric would identify which is less likely to have
vulnerabilities." Two JSON-ish parser candidates are assessed: one written
defensively, one with classic C foot-guns. The example contrasts the
model's choice with the status-quo LoC comparison — which here is not
even statistically meaningful, because both candidates are the same order
of magnitude (§3.1).
"""

from repro.core import ChangeEvaluator, loc_naive_choice, train
from repro.lang import Codebase
from repro.synth import build_corpus

CAREFUL_PARSER = {
    "parse.c": """\
#include <stdlib.h>
#include <string.h>

static int parse_field(const char *src, char *dst, size_t cap) {
    size_t n = strnlen(src, cap - 1);
    memcpy(dst, src, n);
    dst[n] = 0;
    return (int)n;
}

int parse_document(const char *text, size_t len) {
    if (text == NULL || len == 0) {
        return -1;
    }
    char field[128];
    size_t used = 0;
    while (used < len) {
        int n = parse_field(text + used, field, sizeof(field));
        if (n <= 0) {
            return -1;
        }
        used += (size_t)n + 1;
    }
    return 0;
}
""",
}

SLOPPY_PARSER = {
    "fastparse.c": """\
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

char scratch[64];

int parse_field(char *src, char *dst) {
    strcpy(dst, src);
    strcat(dst, scratch);
    return strlen(dst);
}

int parse_document(char *text, int len) {
    char field[32];
    char *work = malloc(len * 2);
    int used = 0;
    while (used < len) {
        used += parse_field(text + used, field);
        sprintf(scratch, text + used);
    }
    system(getenv("POSTPROCESS"));
    return 0;
}
""",
}


def main() -> int:
    print("training the metric (40-app corpus) ...")
    corpus = build_corpus(seed=42, limit=40)
    result = train(corpus, k=5, seed=42)
    evaluator = ChangeEvaluator(result.model)

    careful = Codebase.from_sources("careful-parser", CAREFUL_PARSER)
    sloppy = Codebase.from_sources("fast-parser", SLOPPY_PARSER)

    winner, assess_a, assess_b = evaluator.choose(careful, sloppy)
    print("\nmodel-based comparison")
    print(f"  {careful.name:16s} overall risk {assess_a.overall_risk:.2f}")
    print(f"  {sloppy.name:16s} overall risk {assess_b.overall_risk:.2f}")
    print(f"  -> choose {winner}")

    loc_winner, meaningful = loc_naive_choice(careful, sloppy)
    print("\nstatus-quo comparison (fewer lines of code)")
    print(f"  -> would choose {loc_winner}")
    print(f"  statistically meaningful per §3.1? {'yes' if meaningful else 'no'}"
          " (sizes are within one order of magnitude)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
