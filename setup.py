from setuptools import setup

# Metadata lives in pyproject.toml; this shim enables legacy editable
# installs (`pip install -e .`) on offline hosts without the wheel package.
setup()
